package dataaccess

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"gridrdb/internal/clarens"
	"gridrdb/internal/netsim"
	"gridrdb/internal/poolral"
	"gridrdb/internal/qcache"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/unity"
	"gridrdb/internal/xspec"
)

// Config configures one service instance.
type Config struct {
	// Name identifies this JClarens instance.
	Name string
	// URL is the advertised base URL published to the RLS (set after the
	// Clarens server starts).
	URL string
	// RLS is the replica catalog client; nil disables remote forwarding.
	RLS *rls.Client
	// Profile/Clock charge simulated network costs on remote forwards.
	Profile *netsim.Profile
	Clock   *netsim.Clock
	// DisableRAL forces every query through the Unity path (used by the
	// routing ablation).
	DisableRAL bool
	// CacheSize enables the query-result cache when > 0: up to this many
	// federated SELECT results are kept and served without re-executing
	// their sub-queries. Entries are invalidated when the schema-change
	// tracker detects a change on a source they read from, when a source
	// is removed, or when a mart re-materialization reports a refresh;
	// writes applied directly to backends outside those channels are only
	// bounded by CacheTTL, so keep the cache off (the default) for
	// workloads that mutate marts out of band.
	CacheSize int
	// CacheMaxBytes additionally bounds the cache by estimated resident
	// bytes (0 = entry count only): LRU eviction runs against both caps,
	// and a single result set larger than CacheAdmitFraction of the
	// budget is refused admission instead of evicting everything else.
	CacheMaxBytes int64
	// CacheAdmitFraction caps one admitted entry at this fraction of
	// CacheMaxBytes (0 selects the default, 1/8). The effective cap never
	// exceeds one shard's budget (CacheMaxBytes / shard count): raising
	// the fraction past that requires also lowering CacheShards.
	CacheAdmitFraction float64
	// CacheTTL bounds cached-entry lifetime (0 = no expiry).
	CacheTTL time.Duration
	// CacheShards overrides the cache shard count (0 = default).
	CacheShards int
	// CursorTTL bounds how long an idle server-side cursor (opened via
	// the system.cursor.* methods) survives between fetches before the
	// reaper cancels its query and releases its resources. 0 selects the
	// default (2 minutes); < 0 disables reaping.
	CursorTTL time.Duration
	// DisableBinRows turns off the negotiated binary row framing in both
	// directions: this server neither advertises the row codec (so peers
	// fall back to plain XML when forwarding to it) nor probes peers
	// before its own forwards. Plain XML-RPC is always accepted
	// regardless, so third-party clients are unaffected either way.
	DisableBinRows bool
	// RelayFetchSize is how many rows each cursor-relay fetch requests
	// from a remote peer (0 = DefaultFetchSize; the peer clamps to its own
	// MaxFetchSize). It bounds this server's buffering per federated
	// stream: a relayed scan holds at most one chunk of this many rows.
	RelayFetchSize int
	// SourceBudget bounds each per-source remote operation — a
	// materialized forward, a relay cursor open, every relay fetch and the
	// relay close — and each decomposed sub-query of the local
	// scatter-gather, independently of the caller's request deadline, so
	// one stuck source cannot consume the whole request budget. 0 applies
	// no per-source bound.
	SourceBudget time.Duration
	// ScratchMaxBytes is the byte budget of each buffering streaming
	// operator (hash-join build, external sort): past it the operator
	// spills to disk instead of growing the heap. 0 selects the default
	// (64 MiB); negative disables spilling, letting buffers grow
	// unbounded. It also steers planning — a join whose smaller side is
	// estimated over the budget prefers a merge join with ORDER BY pushed
	// to the sources.
	ScratchMaxBytes int64
	// DisableStreamOps forces decomposed and mixed plans onto the legacy
	// materialize-into-scratch integration path even when the streaming
	// operators could serve them. Escape hatch, and the baseline the join
	// benchmark compares against; production servers leave it off.
	DisableStreamOps bool
	// Logger receives the query path's structured records (route
	// decisions, completions, relays, slow queries), each carrying the
	// query id; nil discards them.
	Logger *slog.Logger
	// SlowQueryThreshold admits queries at least this slow to the
	// slow-query ring (system.slowqueries), each captured with its
	// explain plan and per-phase timings. 0 disables capture.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the slow-query ring (0 = 64 entries).
	SlowQueryLogSize int
	// DisableObsv turns off the per-query instrumentation (ids, phase
	// timings, latency histograms, logging, slow capture). The metric
	// registry itself stays up, serving lifetime counters. This is the
	// no-op baseline the obsv benchmark compares against; production
	// servers leave it off.
	DisableObsv bool
	// MaxInFlight enables the admission gate when > 0: at most this many
	// queries execute (or stream) concurrently; arrivals past the cap
	// queue FIFO within their tenant's weight class until a slot frees,
	// their deadline expires, or the queue fills — the last two shed with
	// clarens.FaultOverloaded before any planning or backend work. Cache
	// hits and coalesced waits never consume a slot. 0 disables the gate.
	MaxInFlight int
	// AdmissionQueue bounds how many queries may wait for a slot. 0
	// selects the default (2 × MaxInFlight); < 0 disables queueing, so a
	// saturated gate sheds immediately.
	AdmissionQueue int
	// AdmissionTimeout is the queue deadline: a waiter that has not been
	// granted a slot within it is shed with FaultOverloaded (the caller's
	// own context expiring first yields FaultCancelled instead). 0
	// selects the default (5s); < 0 waits bounded only by the caller's
	// context.
	AdmissionTimeout time.Duration
	// TenantWeights gives named tenants (authenticated users) a relative
	// share of the admission queue's drain rate; unlisted tenants weigh
	// 1. Weights only matter under backlog — an idle gate admits anyone.
	TenantWeights map[string]int
	// SessionMaxCursors caps server-side cursors concurrently open per
	// session (0 = unlimited). Past it, cursor opens shed with a
	// FaultOverloaded quota fault until one closes, drains, or is reaped.
	SessionMaxCursors int
	// SessionMaxBytes caps estimated bytes streamed to one session over
	// its lifetime (0 = unlimited); the budget resets when the session
	// ends (EndSession, or the hour-idle sweep). A quota hit mid-stream
	// fails the stream with a FaultOverloaded fault and releases its
	// backend resources — remote relay cursors included.
	SessionMaxBytes int64
}

// Route identifies which module answered a query (§4.5's two modules plus
// the remote path).
type Route string

// The possible routes.
const (
	RoutePOOLRAL Route = "pool-ral"
	RouteUnity   Route = "unity"
	RouteRemote  Route = "remote"
	RouteMixed   Route = "mixed"
)

// Stats counts routing decisions.
type Stats struct {
	Queries    atomic.Int64
	RAL        atomic.Int64
	Unity      atomic.Int64
	Forwarded  atomic.Int64
	Mixed      atomic.Int64
	RLSLookups atomic.Int64
	// BinForwards counts remote forwards that used the negotiated binary
	// row framing (the rest fell back to plain XML-RPC).
	BinForwards atomic.Int64
}

// Service is one data access service instance.
type Service struct {
	cfg Config
	fed *unity.Federation
	ral *poolral.RAL
	// cache holds federated query results keyed by (SQL, params); nil
	// when Config.CacheSize is 0.
	cache *qcache.Cache[*QueryResult]
	// cursors tracks open server-side result cursors (system.cursor.*).
	cursors *cursorRegistry

	mu      sync.Mutex
	remotes map[string]*remotePeer
	// ralConns maps source name -> RAL connection string for POOL-
	// supported sources.
	ralConns map[string]string

	stats Stats
	// obs is the observability state: metric registry, logger,
	// slow-query ring, and the relay/cursor lifetime counters.
	obs *serviceObsv
	// admit is the weighted max-in-flight gate (nil when MaxInFlight is
	// 0); sessions enforces per-session cursor/byte quotas (nil when both
	// quota knobs are 0).
	admit    *admitter
	sessions *sessionTable
}

// New creates an empty service; add databases with AddDatabase.
func New(cfg Config) *Service {
	s := &Service{
		cfg:      cfg,
		fed:      mustEmptyFederation(),
		ral:      poolral.New(),
		remotes:  make(map[string]*remotePeer),
		ralConns: make(map[string]string),
	}
	s.obs = newServiceObsv(cfg, s)
	s.admit = newAdmitter(cfg, s.obs)
	s.sessions = newSessionTable(cfg, s.obs)
	s.cursors = newCursorRegistry(cfg.CursorTTL, s.obs)
	s.fed.SourceBudget = cfg.SourceBudget
	s.fed.ScratchMaxBytes = cfg.ScratchMaxBytes
	s.fed.DisableStreamOps = cfg.DisableStreamOps
	s.fed.Logger = s.obs.logger
	if cfg.CacheSize > 0 {
		shards := cfg.CacheShards
		if shards == 0 && cfg.CacheMaxBytes > 0 {
			// The admission cap is clamped to one shard's byte budget, so
			// with the usual 16 shards the documented default cap (1/8 of
			// CacheMaxBytes) would silently halve. Default to 8 shards
			// when byte-bounded so the documented cap is exact.
			shards = 8
		}
		s.cache = qcache.New[*QueryResult](qcache.Options[*QueryResult]{
			MaxEntries:       cfg.CacheSize,
			MaxBytes:         cfg.CacheMaxBytes,
			SizeOf:           func(qr *QueryResult) int64 { return ResultSetBytes(qr.ResultSet) },
			MaxEntryFraction: cfg.CacheAdmitFraction,
			TTL:              cfg.CacheTTL,
			Shards:           shards,
		})
	}
	return s
}

// Per-element footprint constants for the result-set size estimator.
const (
	valueBytes    = int64(unsafe.Sizeof(sqlengine.Value{}))
	sliceHdrBytes = int64(unsafe.Sizeof([]sqlengine.Value(nil)))
	strHdrBytes   = int64(unsafe.Sizeof(""))
)

// ResultSetBytes estimates the resident size of a materialized result
// set: the fixed footprint of each Value plus the variable payload of
// strings and byte slices, and the per-row slice headers. It is the
// SizeOf estimator behind the cache's byte accounting and the streaming
// path's cache-admission threshold.
func ResultSetBytes(rs *sqlengine.ResultSet) int64 {
	if rs == nil {
		return 0
	}
	n := sliceHdrBytes // Rows header
	for _, c := range rs.Columns {
		n += strHdrBytes + int64(len(c))
	}
	for _, row := range rs.Rows {
		n += rowBytes(row)
	}
	return n
}

func mustEmptyFederation() *unity.Federation {
	f, err := unity.Open(&xspec.UpperSpec{Name: "empty"}, nil)
	if err != nil {
		panic(err) // cannot happen: empty spec
	}
	return f
}

// Federation exposes the underlying Unity federation.
func (s *Service) Federation() *unity.Federation { return s.fed }

// Stats returns the routing counters.
func (s *Service) Stats() *Stats { return &s.stats }

// SetURL records the advertised URL (after the Clarens server binds).
func (s *Service) SetURL(url string) { s.cfg.URL = url }

// AddDatabase registers a database (data mart) with this instance: the
// federation learns its tables, the POOL-RAL initializes a handle when the
// vendor is supported, and the tables are published to the RLS.
func (s *Service) AddDatabase(ref xspec.SourceRef, spec *xspec.LowerSpec, user, password string) error {
	if err := s.fed.AddSource(ref, spec); err != nil {
		return err
	}
	vendor := unity.VendorFromDriver(ref.Driver)
	if poolral.Supported(vendor) && !s.cfg.DisableRAL {
		conn := vendor + ":" + ref.URL
		if err := s.ral.InitHandler(conn, user, password); err != nil {
			s.fed.RemoveSource(ref.Name)
			return fmt.Errorf("dataaccess: RAL init for %q: %w", ref.Name, err)
		}
		s.mu.Lock()
		s.ralConns[ref.Name] = conn
		s.mu.Unlock()
	}
	return s.publishTables(spec)
}

// RemoveDatabase unplugs a database. Cached results that read from it are
// evicted: they can no longer be recomputed, so serving them would hide
// the removal.
func (s *Service) RemoveDatabase(name string) error {
	if err := s.fed.RemoveSource(name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.ralConns, name)
	s.mu.Unlock()
	s.InvalidateSource(name)
	return nil
}

// publishTables announces a spec's tables to the RLS (§4.8: "each service
// instance publishes information about the databases and the tables it is
// hosting").
func (s *Service) publishTables(spec *xspec.LowerSpec) error {
	if s.cfg.RLS == nil || s.cfg.URL == "" {
		return nil
	}
	var tables []string
	for _, t := range spec.Tables {
		logical := t.Logical
		if logical == "" {
			logical = t.Name
		}
		tables = append(tables, logical)
	}
	if len(tables) == 0 {
		return nil
	}
	return s.cfg.RLS.Publish(s.cfg.URL, tables)
}

// PublishAll republishes every hosted table (used after schema changes and
// for RLS TTL renewal).
func (s *Service) PublishAll() error {
	dict := s.fed.Dictionary()
	tables := dict.LogicalTables()
	if len(tables) == 0 || s.cfg.RLS == nil || s.cfg.URL == "" {
		return nil
	}
	return s.cfg.RLS.Publish(s.cfg.URL, tables)
}

// Close releases all connections, cancelling any still-open cursors.
func (s *Service) Close() error {
	if s.cfg.RLS != nil && s.cfg.URL != "" {
		s.cfg.RLS.Unpublish(s.cfg.URL, nil)
	}
	s.cursors.closeAll()
	err1 := s.fed.Close()
	err2 := s.ral.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// QueryResult bundles the merged rows with the route that produced them.
type QueryResult struct {
	*sqlengine.ResultSet
	Route Route
	// Servers is the number of Clarens servers involved (1 = local only).
	Servers int
}

// Query is the service entry point: parse, route, execute, integrate.
// When the result cache is enabled, a repeated query is answered from the
// cache (no sub-queries re-executed) and concurrent identical queries are
// collapsed into one execution; callers must treat the returned rows as
// read-only, since hits share one materialized result set.
func (s *Service) Query(sqlText string, params ...sqlengine.Value) (*QueryResult, error) {
	return s.QueryContext(context.Background(), sqlText, params...)
}

// QueryContext is Query under a caller-supplied context, threaded through
// every backend the routed query touches: POOL-RAL statements, Unity
// sub-queries, RLS lookups and remote JClarens forwards all stop promptly
// when ctx is cancelled or its deadline expires. With the result cache
// enabled the context governs only this caller's wait — a coalesced
// computation shared with other callers keeps running until its last
// waiter departs (see qcache.Do).
func (s *Service) QueryContext(ctx context.Context, sqlText string, params ...sqlengine.Value) (*QueryResult, error) {
	s.stats.Queries.Add(1)
	ctx, t := s.beginTrack(ctx, sqlText)
	var (
		qr     *QueryResult
		served bool
		err    error
	)
	if s.cache == nil {
		qr, _, err = s.queryAdmitted(ctx, sqlText, params)
	} else {
		// The track rides into the computation through the context values
		// qcache.Do preserves on its detached goroutine; a served answer
		// (resident hit or coalesced wait) never ran the computation, so
		// its class is the cache. Admission happens inside the computation
		// for the same reason: hits and coalesced waiters never consume an
		// in-flight slot — only the query that actually runs does.
		qr, served, err = s.cache.Do(ctx, cacheKey(sqlText, params), func(ctx context.Context) (*QueryResult, []qcache.Dep, error) {
			return s.queryAdmitted(ctx, sqlText, params)
		})
	}
	if served {
		t.setClass(classCache)
	}
	if err == nil {
		t.noteRows(int64(len(qr.Rows)))
	}
	t.finish(err)
	return qr, err
}

// ExecuteContext runs a previously produced federation plan (obtained
// from Federation().PlanQuery) under ctx, bypassing the cache and the
// RAL/remote routing (plan execution is a purely local Unity operation).
// Callers that plan once and execute many times — e.g. parameterized
// analysis sweeps over the same shape — get the same cancellation
// semantics as QueryContext.
func (s *Service) ExecuteContext(ctx context.Context, plan *unity.Plan, params ...sqlengine.Value) (*QueryResult, error) {
	s.stats.Queries.Add(1)
	ctx, t := s.beginTrack(ctx, "(prepared plan)")
	t.notePlan(plan)
	if plan.Pushdown {
		t.setClass(classUnityPush)
	} else {
		t.setClass(classUnityDecomp)
	}
	tk, aerr := s.acquireSlot(ctx)
	if aerr != nil {
		t.finish(aerr)
		return nil, aerr
	}
	tb := t.now()
	rs, err := s.fed.ExecuteContext(ctx, plan, params...)
	tk.release()
	t.addBackend(tb)
	if err != nil {
		t.finish(err)
		return nil, err
	}
	s.stats.Unity.Add(1)
	t.noteRows(int64(len(rs.Rows)))
	t.finish(nil)
	return &QueryResult{ResultSet: rs, Route: RouteUnity, Servers: 1}, nil
}

// acquireSlot admits the context's caller through the in-flight gate,
// noting the outcome (immediate / queued-for-how-long) on the query
// track. The nil ticket from a disabled gate is safe to release.
func (s *Service) acquireSlot(ctx context.Context) (*ticket, error) {
	if s.admit == nil {
		return nil, nil
	}
	tk, err := s.admit.acquire(ctx, callerFrom(ctx).tenantOf())
	if err != nil {
		return nil, err
	}
	trackFrom(ctx).noteAdmission(tk.outcome, tk.waited)
	return tk, nil
}

// queryAdmitted runs the routing core under an admission slot, held for
// the duration of the (materializing) execution. A shed request returns
// before any planning or backend work.
func (s *Service) queryAdmitted(ctx context.Context, sqlText string, params []sqlengine.Value) (*QueryResult, []qcache.Dep, error) {
	tk, err := s.acquireSlot(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer tk.release()
	return s.queryRouted(ctx, sqlText, params)
}

// queryRouted is the uncached routing core; alongside the result it
// returns the (source, table) set it read from — the cache-invalidation
// fingerprint of the answer.
func (s *Service) queryRouted(ctx context.Context, sqlText string, params []sqlengine.Value) (*QueryResult, []qcache.Dep, error) {
	t := trackFrom(ctx)
	// Fast path: every table is registered locally.
	tp := t.now()
	plan, err := s.fed.PlanQuery(sqlText)
	t.addParse(tp)
	var unknown *unity.ErrUnknownTable
	switch {
	case err == nil:
		t.notePlan(plan)
		return s.queryLocal(ctx, sqlText, plan, params)
	case errors.As(err, &unknown):
		return s.queryWithRemote(ctx, sqlText, params)
	default:
		return nil, nil, err
	}
}

// planDeps converts a unity plan's dependency list to cache deps.
func planDeps(plan *unity.Plan) []qcache.Dep {
	pairs := plan.Dependencies()
	deps := make([]qcache.Dep, len(pairs))
	for i, p := range pairs {
		deps[i] = qcache.Dep{Source: p[0], Table: p[1]}
	}
	return deps
}

// queryLocal routes a fully-local query to POOL-RAL or Unity (§4.5: "the
// data access layer decides which of the two modules to forward the query
// to by finding out which databases are to be queried").
func (s *Service) queryLocal(ctx context.Context, sqlText string, plan *unity.Plan, params []sqlengine.Value) (*QueryResult, []qcache.Dep, error) {
	t := trackFrom(ctx)
	if !s.cfg.DisableRAL && len(params) == 0 {
		if parts, ok, err := s.fed.ExtractRALParts(sqlText); err == nil && ok {
			s.mu.Lock()
			conn, supported := s.ralConns[parts.Source]
			s.mu.Unlock()
			if supported {
				t.setClass(classRAL)
				s.obs.log(ctx, slog.LevelDebug, "route: pool-ral", slog.String("source", parts.Source))
				tb := t.now()
				rs, err := s.ral.QueryValuesContext(ctx, conn, parts.Fields, parts.Tables, parts.Where)
				t.addBackend(tb)
				if err != nil {
					return nil, nil, err
				}
				s.stats.RAL.Add(1)
				deps := make([]qcache.Dep, len(plan.Tables))
				for i, t := range plan.Tables {
					deps[i] = qcache.Dep{Source: parts.Source, Table: t}
				}
				return &QueryResult{ResultSet: rs, Route: RoutePOOLRAL, Servers: 1}, deps, nil
			}
		}
	}
	if plan.Pushdown {
		t.setClass(classUnityPush)
	} else {
		t.setClass(classUnityDecomp)
	}
	s.obs.log(ctx, slog.LevelDebug, "route: unity",
		slog.Bool("pushdown", plan.Pushdown), slog.Int("tables", len(plan.Tables)))
	tb := t.now()
	rs, err := s.fed.ExecuteContext(ctx, plan, params...)
	t.addBackend(tb)
	if err != nil {
		return nil, nil, err
	}
	s.stats.Unity.Add(1)
	return &QueryResult{ResultSet: rs, Route: RouteUnity, Servers: 1}, planDeps(plan), nil
}

// remoteDepPrefix marks cache dependencies on tables served by another
// JClarens instance. The local schema tracker cannot observe remote
// schema changes, so entries carrying these deps rely on CacheTTL (or an
// explicit flush) for freshness.
const remoteDepPrefix = "remote:"

// remotePlan is the table-resolution outcome for a query touching tables
// this instance does not host: which referenced tables are local, which
// remote server hosts each remote table, and the cache-dependency
// fingerprint of the answer.
type remotePlan struct {
	tables     []string
	sel        *sqlengine.SelectStmt
	local      map[string]bool
	remoteHost map[string]string // table -> chosen server URL
	deps       []qcache.Dep
	// singleURL is set when no table is local and every remote table
	// lives on one server — the whole query can be forwarded (or relayed)
	// there untouched.
	singleURL string
}

// resolveRemoteTables splits a query's tables into local and remote,
// choosing a hosting server for each remote table through the RLS.
func (s *Service) resolveRemoteTables(ctx context.Context, sqlText string) (*remotePlan, error) {
	if s.cfg.RLS == nil {
		return nil, fmt.Errorf("dataaccess: query references unregistered tables and no RLS is configured")
	}
	tables, sel, err := unity.TablesInQuery(sqlText)
	if err != nil {
		return nil, err
	}
	rp := &remotePlan{tables: tables, sel: sel, local: map[string]bool{}, remoteHost: map[string]string{}}
	for _, t := range tables {
		if s.fed.HasTable(t) {
			rp.local[t] = true
			// The federation picks a replica at execution time, so depend
			// on every local source hosting the table.
			for _, loc := range s.fed.Dictionary().Lookup(t) {
				rp.deps = append(rp.deps, qcache.Dep{Source: loc.Database, Table: t})
			}
			continue
		}
		s.stats.RLSLookups.Add(1)
		servers, err := s.cfg.RLS.LookupContext(ctx, t)
		if err != nil {
			return nil, err
		}
		// Never forward to ourselves (stale RLS entries).
		servers = without(servers, s.cfg.URL)
		if len(servers) == 0 {
			return nil, fmt.Errorf("dataaccess: table %q is not registered locally and the RLS knows no server for it", t)
		}
		rp.remoteHost[t] = servers[0]
		rp.deps = append(rp.deps, qcache.Dep{Source: remoteDepPrefix + servers[0], Table: t})
	}
	if len(rp.local) == 0 {
		single := ""
		same := true
		for _, url := range rp.remoteHost {
			if single == "" {
				single = url
			} else if single != url {
				same = false
				break
			}
		}
		if same {
			rp.singleURL = single
		}
	}
	return rp, nil
}

// queryWithRemote handles queries touching tables this instance does not
// host: RLS lookup, then either whole-query forwarding (all tables on one
// remote server) or per-table fetch + local integration.
func (s *Service) queryWithRemote(ctx context.Context, sqlText string, params []sqlengine.Value) (*QueryResult, []qcache.Dep, error) {
	t := trackFrom(ctx)
	tr := t.now()
	rp, err := s.resolveRemoteTables(ctx, sqlText)
	t.addRoute(tr)
	if err != nil {
		return nil, nil, err
	}
	t.noteRemote(rp)
	return s.queryWithRemoteResolved(ctx, rp, sqlText, params)
}

// queryWithRemoteResolved executes a resolved remote plan materialized.
// The whole-forward shape transfers the result in one response; the mixed
// shape streams each table — remote ones through a cursor relay when the
// peer supports it — into unity's integration engine, so partial results
// are never held twice on this server.
func (s *Service) queryWithRemoteResolved(ctx context.Context, rp *remotePlan, sqlText string, params []sqlengine.Value) (*QueryResult, []qcache.Dep, error) {
	t := trackFrom(ctx)
	// All tables on one remote server: forward the whole query there.
	if rp.singleURL != "" && len(params) == 0 {
		t.setClass(classRemote)
		s.obs.log(ctx, slog.LevelDebug, "route: forward", slog.String("peer", rp.singleURL))
		tb := t.now()
		rs, err := s.forward(ctx, rp.singleURL, sqlText)
		t.addBackend(tb)
		if err != nil {
			return nil, nil, err
		}
		s.stats.Forwarded.Add(1)
		return &QueryResult{ResultSet: rs, Route: RouteRemote, Servers: 2}, rp.deps, nil
	}
	t.setClass(classMixed)
	s.obs.log(ctx, slog.LevelDebug, "route: mixed",
		slog.Int("tables", len(rp.tables)), slog.Int("remote_tables", len(rp.remoteHost)))

	// Mixed: stream each table (local federation or remote relay) into
	// the integration engine and run the original query over it.
	loads := make([]unity.StreamLoad, 0, len(rp.tables))
	closeLoads := func() {
		for _, ld := range loads {
			ld.Iter.Close()
		}
	}
	serversTouched := map[string]bool{}
	for _, t := range rp.tables {
		fetch := unity.RemoteFetchSQL(rp.sel, t)
		var it sqlengine.RowIter
		if rp.local[t] {
			var err error
			it, _, err = s.fed.QueryStreamContext(ctx, fetch)
			if err != nil {
				closeLoads()
				return nil, nil, err
			}
		} else {
			// Lazy: the peer-side cursor opens when this table's load is
			// consumed, not now — earlier tables may take longer to
			// integrate than the peer's idle-cursor TTL.
			it = s.tableStreamFromRemote(ctx, rp.remoteHost[t], fetch)
			serversTouched[rp.remoteHost[t]] = true
		}
		loads = append(loads, unity.StreamLoad{Logical: t, Iter: it})
	}
	tb := t.now()
	rs, err := unity.IntegrateIters(ctx, rp.sel, loads, params)
	t.addBackend(tb)
	if err != nil {
		return nil, nil, err
	}
	s.stats.Mixed.Add(1)
	return &QueryResult{ResultSet: rs, Route: RouteMixed, Servers: 1 + len(serversTouched)}, rp.deps, nil
}

func without(ss []string, drop string) []string {
	out := ss[:0:0]
	for _, s := range ss {
		if s != drop {
			out = append(out, s)
		}
	}
	return out
}

// remotePeer is one remembered remote JClarens instance plus the outcome
// of the row-codec capability handshake against it.
type remotePeer struct {
	c *clarens.Client

	mu sync.Mutex
	// codec is the negotiation state: 0 = not probed yet (or the probe
	// failed transiently and will be retried), 1 = peer speaks the binary
	// row framing, -1 = plain XML only.
	codec int8
}

// decodeForwardResult is the streaming result decoder forwards hand to
// CallDecodeContext: rows land directly in engine values, whichever
// framing the peer used.
func decodeForwardResult(d *clarens.Decoder) (interface{}, error) {
	return DecodeResultFrom(d)
}

// sourceCall derives the context for one remote per-source operation: the
// configured SourceBudget is layered on top of the caller's deadline, so a
// stuck peer is cut off after the budget even when the overall request has
// (or needs) a much longer allowance.
func (s *Service) sourceCall(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.SourceBudget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.SourceBudget)
}

// forward sends a query to a remote JClarens instance over XML-RPC.
// Server↔server transfers use the negotiated binary row framing when the
// peer advertises it (system.capabilities), transparently falling back to
// plain XML-RPC otherwise; either way the response rows are decoded
// streaming, straight into engine values. Cancelling ctx aborts the HTTP
// request; the remote server sees the disconnect and cancels its own
// backend work in turn.
func (s *Service) forward(ctx context.Context, serverURL, sqlText string) (*sqlengine.ResultSet, error) {
	ctx, cancel := s.sourceCall(ctx)
	defer cancel()
	p := s.remotePeer(serverURL)
	if s.peerSpeaksBinary(ctx, p) {
		res, err := p.c.CallDecodeContext(ctx, "dataaccess.queryb", decodeForwardResult, sqlText)
		var f *clarens.Fault
		switch {
		case err == nil:
			rs, ok := res.(*sqlengine.ResultSet)
			if !ok {
				// A methodResponse with no result value decodes to nil.
				return nil, fmt.Errorf("dataaccess: forward to %s: empty response", serverURL)
			}
			s.stats.BinForwards.Add(1)
			return rs, nil
		case errors.As(err, &f) && f.Code == clarens.FaultNoMethod:
			// The peer lost the method (restarted without the codec, or a
			// stale capability answer): renegotiate as plain XML.
			p.mu.Lock()
			p.codec = -1
			p.mu.Unlock()
		default:
			return nil, fmt.Errorf("dataaccess: forward to %s: %w", serverURL, err)
		}
	}
	res, err := p.c.CallDecodeContext(ctx, "dataaccess.query", decodeForwardResult, sqlText)
	if err != nil {
		return nil, fmt.Errorf("dataaccess: forward to %s: %w", serverURL, err)
	}
	rs, ok := res.(*sqlengine.ResultSet)
	if !ok {
		return nil, fmt.Errorf("dataaccess: forward to %s: empty response", serverURL)
	}
	return rs, nil
}

// peerSpeaksBinary resolves (once per peer) whether the remote advertises
// the binary row codec. A transient probe failure leaves the state
// unresolved — the forward falls back to plain XML now and the next
// forward probes again; only a definitive answer (a capability response,
// or a server without the method) is cached.
func (s *Service) peerSpeaksBinary(ctx context.Context, p *remotePeer) bool {
	if s.cfg.DisableBinRows {
		return false
	}
	p.mu.Lock()
	state := p.codec
	p.mu.Unlock()
	if state != 0 {
		return state == 1
	}
	res, err := p.c.CallContext(ctx, "system.capabilities")
	next := int8(-1)
	if err != nil {
		var f *clarens.Fault
		if !errors.As(err, &f) || f.Code != clarens.FaultNoMethod {
			next = 0 // transport trouble: retry on a later forward
		}
	} else if m, ok := res.(map[string]interface{}); ok {
		// Pin to the exactly-supported version: the responder frames rows
		// at the version it advertises, so a future higher-version peer
		// must be spoken to over plain XML rather than answered with
		// frames this side cannot decode. (A later protocol revision can
		// add a requested-version argument for graceful downgrade.)
		if v, _ := m["rowcodec"].(int64); v == RowCodecVersion {
			next = 1
		}
	}
	p.mu.Lock()
	p.codec = next
	p.mu.Unlock()
	return next == 1
}

func (s *Service) remotePeer(serverURL string) *remotePeer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.remotes[serverURL]; ok {
		return p
	}
	c := clarens.NewClient(serverURL)
	c.Profile = s.cfg.Profile
	c.Clock = s.cfg.Clock
	p := &remotePeer{c: c}
	s.remotes[serverURL] = p
	return p
}

// ---- query result cache ----

// cacheKey derives the cache key for a query: the SQL text plus a
// kind-tagged, length-prefixed encoding of each parameter. The length
// prefix makes the encoding injective even when string/bytes values embed
// NULs or digits, and the kind tag keeps ("1") distinct from (1).
func cacheKey(sqlText string, params []sqlengine.Value) string {
	if len(params) == 0 {
		return sqlText
	}
	var b strings.Builder
	b.WriteString(sqlText)
	field := func(tag byte, payload string) {
		b.WriteByte(0)
		b.WriteByte(tag)
		b.WriteString(strconv.Itoa(len(payload)))
		b.WriteByte(':')
		b.WriteString(payload)
	}
	for _, p := range params {
		switch p.Kind {
		case sqlengine.KindNull:
			field('n', "")
		case sqlengine.KindInt:
			field('i', strconv.FormatInt(p.Int, 10))
		case sqlengine.KindFloat:
			field('f', strconv.FormatFloat(p.Float, 'g', -1, 64))
		case sqlengine.KindString:
			field('s', p.Str)
		case sqlengine.KindBool:
			field('b', strconv.FormatBool(p.Bool))
		case sqlengine.KindTime:
			field('t', p.Time.UTC().Format(time.RFC3339Nano))
		case sqlengine.KindBytes:
			field('y', string(p.Bytes))
		}
	}
	return b.String()
}

// CacheEnabled reports whether the query-result cache is on.
func (s *Service) CacheEnabled() bool { return s.cache != nil }

// CacheStats snapshots the cache counters (zero when disabled).
func (s *Service) CacheStats() qcache.Stats {
	if s.cache == nil {
		return qcache.Stats{}
	}
	return s.cache.Stats()
}

// InvalidateSource evicts every cached result that read from the named
// source, returning how many entries were dropped.
func (s *Service) InvalidateSource(source string) int {
	if s.cache == nil {
		return 0
	}
	return s.cache.InvalidateSource(source)
}

// InvalidateTable evicts cached results that read (source, table).
func (s *Service) InvalidateTable(source, table string) int {
	if s.cache == nil {
		return 0
	}
	return s.cache.InvalidateTable(source, table)
}

// CacheFlush drops every cached result (operational escape hatch, also
// exposed as the system.cacheflush XML-RPC method).
func (s *Service) CacheFlush() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.Flush()
}

// MartInvalidator returns a warehouse.ETL OnRefresh hook: when the ETL
// re-materializes a table of the named mart, the dependent cache entries
// are evicted so the next query sees the refreshed rows.
func (s *Service) MartInvalidator(source string) func(table string) {
	return func(table string) { s.InvalidateTable(source, strings.ToLower(table)) }
}

// ---- XML-RPC result codec (shared with the Clarens method layer) ----

// EncodeRows converts rows to the XML-RPC value family. It is the boxed
// reference codec: the serving wire path encodes rows cell-direct via
// wireRows/binaryRows (see wirecodec.go), and this form remains for
// in-process payload assembly, generic clients and as the benchmark
// baseline the zero-boxing path is measured against.
func EncodeRows(rows []sqlengine.Row) []interface{} {
	out := make([]interface{}, len(rows))
	for i, row := range rows {
		r := make([]interface{}, len(row))
		for j, v := range row {
			switch v.Kind {
			case sqlengine.KindNull:
				r[j] = nil
			case sqlengine.KindInt:
				r[j] = v.Int
			case sqlengine.KindFloat:
				r[j] = v.Float
			case sqlengine.KindString:
				r[j] = v.Str
			case sqlengine.KindBool:
				r[j] = v.Bool
			case sqlengine.KindTime:
				r[j] = v.Time
			case sqlengine.KindBytes:
				r[j] = v.Bytes
			}
		}
		out[i] = r
	}
	return out
}

// EncodeResult converts a result set to the XML-RPC value family.
func EncodeResult(rs *sqlengine.ResultSet) map[string]interface{} {
	cols := make([]interface{}, len(rs.Columns))
	for i, c := range rs.Columns {
		cols[i] = c
	}
	return map[string]interface{}{"columns": cols, "rows": EncodeRows(rs.Rows)}
}

// DecodeRows converts an XML-RPC rows payload back to engine rows. A
// payload that is not a list of lists, or a cell of an unknown type, is a
// protocol error, reported rather than silently dropped.
func DecodeRows(v interface{}) ([]sqlengine.Row, error) {
	list, ok := v.([]interface{})
	if !ok {
		return nil, fmt.Errorf("dataaccess: rows payload is %T, want a list", v)
	}
	rows := make([]sqlengine.Row, 0, len(list))
	for i, ri := range list {
		cells, ok := ri.([]interface{})
		if !ok {
			return nil, fmt.Errorf("dataaccess: row %d is %T, want a list", i, ri)
		}
		row := make(sqlengine.Row, len(cells))
		for j, cell := range cells {
			switch x := cell.(type) {
			case nil:
				row[j] = sqlengine.Null()
			case int64:
				row[j] = sqlengine.NewInt(x)
			case float64:
				row[j] = sqlengine.NewFloat(x)
			case string:
				row[j] = sqlengine.NewString(x)
			case bool:
				row[j] = sqlengine.NewBool(x)
			case time.Time:
				row[j] = sqlengine.NewTime(x)
			case []byte:
				row[j] = sqlengine.NewBytes(x)
			default:
				return nil, fmt.Errorf("dataaccess: row %d cell %d has unexpected type %T", i, j, cell)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DecodeResult converts an XML-RPC result back to a result set. Malformed
// payloads — a non-map wrapper, a missing or non-list "columns"/"rows"
// field, a non-string column name — are errors: truncating them silently
// (as earlier versions did) turned protocol bugs into wrong, shorter
// answers.
func DecodeResult(v interface{}) (*sqlengine.ResultSet, error) {
	m, ok := v.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("dataaccess: unexpected result shape %T, want a struct", v)
	}
	colsRaw, ok := m["columns"]
	if !ok {
		return nil, fmt.Errorf("dataaccess: result has no \"columns\" field")
	}
	cols, ok := colsRaw.([]interface{})
	if !ok {
		return nil, fmt.Errorf("dataaccess: \"columns\" is %T, want a list", colsRaw)
	}
	rs := &sqlengine.ResultSet{Columns: make([]string, 0, len(cols))}
	for i, c := range cols {
		name, ok := c.(string)
		if !ok {
			return nil, fmt.Errorf("dataaccess: column %d is %T, want a string", i, c)
		}
		rs.Columns = append(rs.Columns, name)
	}
	rowsRaw, ok := m["rows"]
	if !ok {
		return nil, fmt.Errorf("dataaccess: result has no \"rows\" field")
	}
	rows, err := DecodeRows(rowsRaw)
	if err != nil {
		return nil, err
	}
	rs.Rows = rows
	return rs, nil
}

// Chunk is one decoded frame of the cursor fetch protocol.
type Chunk struct {
	Rows []sqlengine.Row
	// Done reports stream exhaustion; a Done chunk may still carry rows.
	Done bool
}

// EncodeChunk frames one cursor fetch response.
func EncodeChunk(rows []sqlengine.Row, done bool) map[string]interface{} {
	return map[string]interface{}{"rows": EncodeRows(rows), "done": done}
}

// DecodeChunk decodes one cursor fetch response.
func DecodeChunk(v interface{}) (*Chunk, error) {
	m, ok := v.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("dataaccess: unexpected chunk shape %T, want a struct", v)
	}
	rowsRaw, ok := m["rows"]
	if !ok {
		return nil, fmt.Errorf("dataaccess: chunk has no \"rows\" field")
	}
	rows, err := DecodeRows(rowsRaw)
	if err != nil {
		return nil, err
	}
	done, ok := m["done"].(bool)
	if !ok {
		return nil, fmt.Errorf("dataaccess: chunk \"done\" is %T, want a bool", m["done"])
	}
	return &Chunk{Rows: rows, Done: done}, nil
}
