package dataaccess

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"gridrdb/internal/clarens"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqldriver"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// mkMart builds a mart engine with an ntuple-ish table, registers it for
// local:// access, and returns its spec.
func mkMart(t *testing.T, name string, d *sqlengine.Dialect, table string, rows int) (*sqlengine.Engine, *xspec.LowerSpec) {
	t.Helper()
	e := sqlengine.NewEngine(name, d)
	q := d.QuoteIdent
	ddl := fmt.Sprintf("CREATE TABLE %s (%s BIGINT PRIMARY KEY, %s BIGINT, %s DOUBLE)",
		q(table), q("event_id"), q("run"), q("e_tot"))
	if d == sqlengine.DialectOracle {
		ddl = strings.Replace(ddl, "BIGINT", "NUMBER", 2)
		ddl = strings.Replace(ddl, "DOUBLE", "BINARY_DOUBLE", 1)
	}
	if _, err := e.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= rows; i++ {
		sql := fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, %g)", q(table), i, 100+i%2, float64(i)+0.5)
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	sqldriver.RegisterEngine(e)
	t.Cleanup(func() { sqldriver.UnregisterEngine(name) })
	spec, err := xspec.Generate(name, d.Name, e)
	if err != nil {
		t.Fatal(err)
	}
	return e, spec
}

func addMart(t *testing.T, s *Service, name string, spec *xspec.LowerSpec, driver string) {
	t.Helper()
	if err := s.AddDatabase(xspec.SourceRef{Name: name, URL: "local://" + name, Driver: driver}, spec, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingRALvsUnity(t *testing.T) {
	s := New(Config{Name: "jc1"})
	defer s.Close()
	_, mySpec := mkMart(t, "mart_my", sqlengine.DialectMySQL, "events", 10)
	_, msSpec := mkMart(t, "mart_ms", sqlengine.DialectMSSQL, "runsinfo", 4)
	addMart(t, s, "mart_my", mySpec, "gridsql-mysql")
	addMart(t, s, "mart_ms", msSpec, "gridsql-mssql")

	// Simple single-table query on a POOL-supported vendor -> RAL path.
	qr, err := s.Query("SELECT event_id, e_tot FROM events WHERE run = 101")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RoutePOOLRAL {
		t.Errorf("route = %s, want pool-ral", qr.Route)
	}
	if len(qr.Rows) != 5 {
		t.Errorf("rows = %d", len(qr.Rows))
	}

	// Same query shape on the MS-SQL mart (not POOL-supported) -> Unity.
	qr, err = s.Query("SELECT event_id FROM runsinfo WHERE run = 101")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteUnity {
		t.Errorf("route = %s, want unity", qr.Route)
	}

	// Aggregate on the POOL vendor: shape does not fit RAL -> Unity.
	qr, err = s.Query("SELECT COUNT(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteUnity {
		t.Errorf("aggregate route = %s, want unity", qr.Route)
	}
	if qr.Rows[0][0].Int != 10 {
		t.Errorf("count = %v", qr.Rows[0][0])
	}

	// Cross-database join -> Unity (distributed).
	qr, err = s.Query("SELECT e.event_id FROM events e JOIN runsinfo r ON e.run = r.run")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteUnity {
		t.Errorf("join route = %s", qr.Route)
	}

	st := s.Stats()
	if st.RAL.Load() != 1 || st.Unity.Load() != 3 {
		t.Errorf("stats: ral=%d unity=%d", st.RAL.Load(), st.Unity.Load())
	}
}

func TestDisableRALAblation(t *testing.T) {
	s := New(Config{Name: "jc1", DisableRAL: true})
	defer s.Close()
	_, mySpec := mkMart(t, "mart_my2", sqlengine.DialectMySQL, "events", 5)
	addMart(t, s, "mart_my2", mySpec, "gridsql-mysql")
	qr, err := s.Query("SELECT event_id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteUnity {
		t.Errorf("route with RAL disabled = %s", qr.Route)
	}
}

// twoServerDeployment starts an RLS plus two Clarens-fronted services:
// jc1 hosts "events", jc2 hosts "runsinfo" and "calib".
func twoServerDeployment(t *testing.T) (*Service, *Service) {
	t.Helper()
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { catalog.Close() })

	mk := func(name string) (*Service, *clarens.Server) {
		svc := New(Config{Name: name, RLS: rls.NewClient(rlsURL)})
		srv := clarens.NewServer(true)
		svc.RegisterMethods(srv)
		url, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc.SetURL(url)
		t.Cleanup(func() { srv.Close(); svc.Close() })
		return svc, srv
	}
	jc1, _ := mk("jc1")
	jc2, _ := mk("jc2")

	_, evSpec := mkMart(t, "d_events", sqlengine.DialectMySQL, "events", 12)
	addMart(t, jc1, "d_events", evSpec, "gridsql-mysql")

	_, runSpec := mkMart(t, "d_runs", sqlengine.DialectMSSQL, "runsinfo", 6)
	addMart(t, jc2, "d_runs", runSpec, "gridsql-mssql")
	_, calSpec := mkMart(t, "d_calib", sqlengine.DialectSQLite, "calib", 3)
	addMart(t, jc2, "d_calib", calSpec, "gridsql-sqlite")
	return jc1, jc2
}

func TestRemoteForwardingViaRLS(t *testing.T) {
	jc1, _ := twoServerDeployment(t)

	// jc1 does not host runsinfo; it must look it up in the RLS and
	// forward the whole query to jc2.
	qr, err := jc1.Query("SELECT event_id FROM runsinfo WHERE run = 101")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteRemote || qr.Servers != 2 {
		t.Errorf("route=%s servers=%d, want remote/2", qr.Route, qr.Servers)
	}
	if len(qr.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(qr.Rows))
	}
	if jc1.Stats().RLSLookups.Load() == 0 {
		t.Error("no RLS lookups recorded")
	}
}

func TestMixedLocalRemoteJoin(t *testing.T) {
	jc1, _ := twoServerDeployment(t)
	// events is local to jc1, runsinfo lives on jc2: per-table fetch +
	// local integration.
	qr, err := jc1.Query("SELECT e.event_id, r.e_tot FROM events e JOIN runsinfo r ON e.run = r.run ORDER BY e.event_id")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteMixed || qr.Servers != 2 {
		t.Errorf("route=%s servers=%d, want mixed/2", qr.Route, qr.Servers)
	}
	if len(qr.Rows) == 0 {
		t.Error("mixed join returned no rows")
	}
}

func TestRemoteTwoServerFourTables(t *testing.T) {
	jc1, _ := twoServerDeployment(t)
	// Table 1's hardest row: multiple tables across 2 servers.
	qr, err := jc1.Query("SELECT e.event_id, r.run, c.event_id AS cal FROM events e JOIN runsinfo r ON e.run = r.run JOIN calib c ON c.run = r.run")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteMixed {
		t.Errorf("route = %s", qr.Route)
	}
	if qr.Servers != 2 {
		t.Errorf("servers = %d", qr.Servers)
	}
}

func TestUnknownEverywhere(t *testing.T) {
	jc1, _ := twoServerDeployment(t)
	if _, err := jc1.Query("SELECT * FROM never_published"); err == nil {
		t.Fatal("query for unknown table succeeded")
	}
	// Without RLS configured the error is immediate.
	lone := New(Config{Name: "lone"})
	defer lone.Close()
	if _, err := lone.Query("SELECT * FROM anything"); err == nil || !strings.Contains(err.Error(), "no RLS") {
		t.Fatalf("err = %v", err)
	}
}

func TestClarensQueryEndToEnd(t *testing.T) {
	_, jc2 := twoServerDeployment(t)
	_ = jc2
	// Reach jc2's tables through its own XML-RPC interface.
	// Find jc2's URL via the RLS by asking jc1's config — simpler: create
	// a fresh client against jc2's clarens URL stored in cfg.
	c := clarens.NewClient(jc2.cfg.URL)
	res, err := c.Call("dataaccess.query", "SELECT event_id, e_tot FROM calib ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DecodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 || rs.Rows[0][0].Int != 1 {
		t.Fatalf("rows: %v", rs.Rows)
	}
	m := res.(map[string]interface{})
	if m["route"].(string) == "" {
		t.Error("route missing from response")
	}
	// tables + schema methods
	res, err = c.Call("dataaccess.tables")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.([]interface{})) != 2 {
		t.Errorf("tables: %v", res)
	}
	res, err = c.Call("dataaccess.schema", "calib")
	if err != nil {
		t.Fatal(err)
	}
	sm := res.(map[string]interface{})
	if sm["replicas"].(int64) != 1 || len(sm["columns"].([]interface{})) != 3 {
		t.Errorf("schema: %v", sm)
	}
	if _, err := c.Call("dataaccess.schema", "nosuch"); err == nil {
		t.Error("schema of unknown table succeeded")
	}
}

func TestPlugInDatabase(t *testing.T) {
	jc1, _ := twoServerDeployment(t)

	lap := sqlengine.NewEngine("laptopdb", sqlengine.DialectSQLite)
	if err := lap.ExecScript("CREATE TABLE conditions (run INTEGER, temp REAL); INSERT INTO conditions VALUES (100, 21.5)"); err != nil {
		t.Fatal(err)
	}
	sqldriver.RegisterEngine(lap)
	t.Cleanup(func() { sqldriver.UnregisterEngine("laptopdb") })

	spec, err := xspec.Generate("laptopdb", "sqlite", lap)
	if err != nil {
		t.Fatal(err)
	}
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(t.TempDir(), "laptopdb.xspec")
	if err := xspec.WriteFile(specPath, data); err != nil {
		t.Fatal(err)
	}

	// Plug in over XML-RPC, the paper's §4.10 flow.
	c := clarens.NewClient(jc1.cfg.URL)
	res, err := c.Call("dataaccess.addDatabase", "file://"+specPath, "gridsql-sqlite", "local://laptopdb")
	if err != nil {
		t.Fatal(err)
	}
	if res.(string) != "laptopdb" {
		t.Fatalf("plug-in returned %v", res)
	}
	qr, err := jc1.Query("SELECT temp FROM conditions WHERE run = 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 {
		t.Fatalf("rows: %v", qr.Rows)
	}
	// Remove over XML-RPC.
	if _, err := c.Call("dataaccess.removeDatabase", "laptopdb"); err != nil {
		t.Fatal(err)
	}
	if _, err := jc1.Query("SELECT temp FROM conditions"); err == nil {
		t.Error("removed database still answers locally")
	}
}

func TestSchemaTracker(t *testing.T) {
	s := New(Config{Name: "jc1"})
	defer s.Close()
	mart, spec := mkMart(t, "tracked", sqlengine.DialectMySQL, "events", 3)
	addMart(t, s, "tracked", spec, "gridsql-mysql")

	tr := NewTracker(s, 0)
	// First check establishes the baseline.
	updated, err := tr.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(updated) != 0 {
		t.Fatalf("baseline check updated %v", updated)
	}
	// No change: second check is a no-op.
	updated, err = tr.CheckNow()
	if err != nil || len(updated) != 0 {
		t.Fatalf("no-change check: %v %v", updated, err)
	}
	// Schema change on the live mart: new table appears.
	if _, err := mart.Exec("CREATE TABLE `extras` (`k` BIGINT, `v` VARCHAR(8))"); err != nil {
		t.Fatal(err)
	}
	updated, err = tr.CheckNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(updated) != 1 || updated[0] != "tracked" {
		t.Fatalf("updated = %v", updated)
	}
	// The service must now answer queries against the new table.
	if _, err := s.Query("SELECT k FROM extras"); err != nil {
		t.Fatalf("new table not visible after reload: %v", err)
	}
	checks, ups := tr.Stats()
	if checks != 3 || ups != 1 {
		t.Errorf("tracker stats: checks=%d updates=%d", checks, ups)
	}
}

func TestEncodeDecodeResult(t *testing.T) {
	rs := &sqlengine.ResultSet{
		Columns: []string{"a", "b", "c"},
		Rows: []sqlengine.Row{
			{sqlengine.NewInt(1), sqlengine.NewFloat(2.5), sqlengine.NewString("x")},
			{sqlengine.Null(), sqlengine.NewBool(true), sqlengine.NewBytes([]byte{9})},
		},
	}
	back, err := DecodeResult(EncodeResult(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Columns[2] != "c" {
		t.Fatalf("round trip: %+v", back)
	}
	if !back.Rows[1][0].IsNull() || !back.Rows[1][1].Bool {
		t.Fatalf("values: %v", back.Rows[1])
	}
	if _, err := DecodeResult("garbage"); err == nil {
		t.Error("garbage decoded")
	}
}
