package dataaccess

import (
	"fmt"
	"testing"
	"time"

	"gridrdb/internal/sqlengine"
)

// TestQueryStreamMatchesQuery checks row-for-row equivalence of the
// streaming and materializing paths across the three local routes: RAL
// (simple scan on a POOL vendor), Unity pushdown (ORDER BY scan), and the
// decomposed cross-mart join (streamed from the integrated result).
func TestQueryStreamMatchesQuery(t *testing.T) {
	s := New(Config{Name: "jc-stream-eq"})
	defer s.Close()
	_, mySpec := mkMart(t, "seq_my", sqlengine.DialectMySQL, "events", 10)
	_, msSpec := mkMart(t, "seq_ms", sqlengine.DialectMSSQL, "runsinfo", 6)
	addMart(t, s, "seq_my", mySpec, "gridsql-mysql")
	addMart(t, s, "seq_ms", msSpec, "gridsql-mssql")

	queries := []struct {
		sql   string
		route Route
	}{
		{"SELECT event_id, e_tot FROM events WHERE run = 101", RoutePOOLRAL},
		{"SELECT event_id FROM events ORDER BY event_id", RouteUnity},
		{"SELECT e.event_id, r.e_tot FROM events e JOIN runsinfo r ON e.run = r.run ORDER BY e.event_id", RouteUnity},
	}
	for _, q := range queries {
		qr, err := s.Query(q.sql)
		if err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		sr, err := s.QueryStream(q.sql)
		if err != nil {
			t.Fatalf("%s (stream): %v", q.sql, err)
		}
		if sr.Route != q.route {
			t.Errorf("%s: stream route = %s, want %s", q.sql, sr.Route, q.route)
		}
		var streamed []sqlengine.Row
		if err := sr.ForEach(func(row sqlengine.Row) error {
			streamed = append(streamed, row)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", q.sql, err)
		}
		if len(streamed) != len(qr.Rows) {
			t.Fatalf("%s: streamed %d rows, materialized %d", q.sql, len(streamed), len(qr.Rows))
		}
		for i := range streamed {
			if fmt.Sprint(streamed[i]) != fmt.Sprint(qr.Rows[i]) {
				t.Fatalf("%s row %d: stream %v != query %v", q.sql, i, streamed[i], qr.Rows[i])
			}
		}
	}
}

// newByteCachedService builds a service whose cache has a byte budget, so
// streamed results under the admission cap are cached.
func newByteCachedService(t *testing.T, maxBytes int64) *Service {
	t.Helper()
	s := New(Config{Name: "jc-stream-cache", CacheSize: 64, CacheMaxBytes: maxBytes, CacheShards: 1})
	t.Cleanup(func() { s.Close() })
	_, spec := mkMart(t, fmt.Sprintf("scache_%d", maxBytes), sqlengine.DialectMySQL, "events", 12)
	addMart(t, s, fmt.Sprintf("scache_%d", maxBytes), spec, "gridsql-mysql")
	return s
}

// TestStreamFillsCacheUnderLimit: a fully drained streamed query whose
// result fits the admission cap lands in the cache, so the next
// materialized query is a hit with no backend re-execution.
func TestStreamFillsCacheUnderLimit(t *testing.T) {
	s := newByteCachedService(t, 1<<20)
	q := "SELECT event_id FROM events ORDER BY event_id"

	sr, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sr.ForEach(func(sqlengine.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("streamed %d rows", n)
	}
	if st := s.CacheStats(); st.Entries != 1 {
		t.Fatalf("entries after drained stream = %d, want 1", st.Entries)
	}

	fedBefore, _, _ := s.Federation().Stats()
	qr, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 12 {
		t.Fatalf("cached rows = %d", len(qr.Rows))
	}
	if fedAfter, _, _ := s.Federation().Stats(); fedAfter != fedBefore {
		t.Fatal("query re-executed despite the stream-filled cache entry")
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

// TestStreamBypassesCacheOverLimit: a result set over the admission cap
// streams past the cache — nothing is buffered for it and nothing is
// admitted.
func TestStreamBypassesCacheOverLimit(t *testing.T) {
	// 2 KiB budget, shard-clamped admission cap 256 bytes: a 12-row result
	// can never be admitted.
	s := newByteCachedService(t, 2048)
	q := "SELECT event_id FROM events ORDER BY event_id"

	sr, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sr.ForEach(func(sqlengine.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("streamed %d rows", n)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("oversized streamed result was cached: %+v", st)
	}
	fedBefore, _, _ := s.Federation().Stats()
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if fedAfter, _, _ := s.Federation().Stats(); fedAfter == fedBefore {
		t.Fatal("second query should have re-executed (nothing admissible to cache)")
	}
}

// TestStreamServedFromCache: a resident entry (primed by the materialized
// path) serves streams from memory without touching a backend.
func TestStreamServedFromCache(t *testing.T) {
	s := newByteCachedService(t, 1<<20)
	q := "SELECT event_id FROM events ORDER BY event_id"
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	fedBefore, _, _ := s.Federation().Stats()
	sr, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sr.ForEach(func(sqlengine.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("streamed %d rows from cache", n)
	}
	if fedAfter, _, _ := s.Federation().Stats(); fedAfter != fedBefore {
		t.Fatal("cached stream still hit the backend")
	}
	if st := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("hits = %d, want 1", st.Hits)
	}
}

// TestStreamPartialConsumptionNotCached: a stream abandoned mid-scan must
// not insert a truncated result.
func TestStreamPartialConsumptionNotCached(t *testing.T) {
	s := newByteCachedService(t, 1<<20)
	q := "SELECT event_id FROM events ORDER BY event_id"
	sr, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	sr.Close() // walk away after one row
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("partial stream was cached: %+v", st)
	}
	qr, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 12 {
		t.Fatalf("full query after partial stream returned %d rows", len(qr.Rows))
	}
}

// TestStreamFillRespectsInvalidation: an invalidation landing while a
// stream is in flight must suppress the stream's cache insert (the rows
// were read from pre-invalidation state).
func TestStreamFillRespectsInvalidation(t *testing.T) {
	s := newByteCachedService(t, 1<<20)
	q := "SELECT event_id FROM events ORDER BY event_id"
	sr, err := s.QueryStream(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	// A schema change arrives mid-stream.
	s.CacheFlush()
	if err := sr.ForEach(func(sqlengine.Row) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Entries != 0 {
		t.Fatalf("stale stream result was cached past an invalidation: %+v", st)
	}
}

// TestResultSetBytes sanity-checks the size estimator the byte-bounded
// cache runs on: monotone in rows and accounting for string payloads.
func TestResultSetBytes(t *testing.T) {
	small := &sqlengine.ResultSet{
		Columns: []string{"a"},
		Rows:    []sqlengine.Row{{sqlengine.NewInt(1)}},
	}
	big := &sqlengine.ResultSet{
		Columns: []string{"a"},
		Rows: []sqlengine.Row{
			{sqlengine.NewInt(1)},
			{sqlengine.NewString("some rather long payload string")},
		},
	}
	if ResultSetBytes(nil) != 0 {
		t.Fatal("nil result set should be 0 bytes")
	}
	sb, bb := ResultSetBytes(small), ResultSetBytes(big)
	if sb <= 0 || bb <= sb {
		t.Fatalf("sizes: small=%d big=%d", sb, bb)
	}
	if bb-sb < int64(len("some rather long payload string")) {
		t.Fatalf("string payload not accounted: small=%d big=%d", sb, bb)
	}
}

// TestServiceCursorTTLConfig: a negative CursorTTL disables reaping.
func TestServiceCursorTTLConfig(t *testing.T) {
	s := New(Config{Name: "jc-noreap", CursorTTL: -1})
	defer s.Close()
	_, spec := mkMart(t, "noreap_mart", sqlengine.DialectMySQL, "events", 4)
	addMart(t, s, "noreap_mart", spec, "gridsql-mysql")
	info, err := s.OpenCursor(t.Context(), "SELECT event_id FROM events ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	if info.TTL != 0 {
		t.Fatalf("TTL = %v, want 0 (disabled)", info.TTL)
	}
	time.Sleep(30 * time.Millisecond)
	if n := s.ReapCursorsNow(); n != 0 {
		t.Fatalf("reaped %d cursors with reaping disabled", n)
	}
	if s.CursorCount() != 1 {
		t.Fatalf("cursor count = %d", s.CursorCount())
	}
}
