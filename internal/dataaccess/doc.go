// Package dataaccess implements the paper's data access layer (§4.5): the
// JClarens-hosted service that receives SQL over logical names, decides
// per query whether to route through the POOL-RAL module (databases whose
// vendor POOL supports) or the Unity/JDBC module (everything else), and —
// when a requested table is not registered locally — consults the Replica
// Location Service and forwards sub-queries to the remote JClarens
// instance that hosts it, integrating all partial results into one
// consistent answer. It also hosts the runtime features of §4.9 (schema-
// change tracking) and §4.10 (plug-in databases).
//
// Every query path is context-aware end-to-end: QueryContext threads its
// context through the POOL-RAL statement, each Unity sub-query, RLS
// lookups and remote JClarens forwards, so a disconnected or timed-out
// client stops consuming backend resources promptly. The XML-RPC method
// layer (RegisterMethods) derives that context from the HTTP request.
//
// Results can be delivered materialized (QueryContext) or as an
// incremental row stream (QueryStreamContext), and remote consumers page
// streams through a server-side cursor registry (OpenCursor/FetchCursor/
// CloseCursor, the system.cursor.* methods) whose idle cursors a TTL
// janitor reaps. When a streamed query routes to another JClarens
// instance, the service opens a cursor *there* and relays it page by page
// (relay.go): memory per federated scan is bounded by the fetch size on
// every hop, the remote cursor is closed when the local stream closes,
// and the transfer rides the negotiated binary row framing
// (system.cursor.fetchb) when the peer advertises it — falling back to
// plain XML-RPC otherwise. Row payloads themselves travel through the
// zero-boxing wire codec (wirecodec.go) in either of two encodings; the
// full wire surface is specified in docs/WIRE.md.
package dataaccess
