package dataaccess

import (
	"strings"
	"testing"

	"gridrdb/internal/sqlengine"
)

// TestCodecRoundTrip: EncodeResult / DecodeResult are inverses over every
// value kind.
func TestCodecRoundTrip(t *testing.T) {
	rs := &sqlengine.ResultSet{
		Columns: []string{"i", "f", "s", "b", "y", "n"},
		Rows: []sqlengine.Row{{
			sqlengine.NewInt(42),
			sqlengine.NewFloat(2.5),
			sqlengine.NewString("hello"),
			sqlengine.NewBool(true),
			sqlengine.NewBytes([]byte{1, 2}),
			sqlengine.Null(),
		}},
	}
	got, err := DecodeResult(EncodeResult(rs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != 6 || len(got.Rows) != 1 {
		t.Fatalf("round trip shape: %v", got)
	}
	if got.Rows[0][0].Int != 42 || got.Rows[0][2].Str != "hello" || !got.Rows[0][5].IsNull() {
		t.Fatalf("round trip values: %v", got.Rows[0])
	}
}

// TestDecodeResultRejectsMalformed pins the satellite bugfix: malformed
// payloads fail loudly with a descriptive error instead of silently
// shrinking to a truncated result set (the old `cols, _ := ...` pattern).
func TestDecodeResultRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload interface{}
		wantSub string
	}{
		{"non-map wrapper", []interface{}{"x"}, "unexpected result shape"},
		{"missing columns", map[string]interface{}{"rows": []interface{}{}}, `no "columns"`},
		{"columns not a list", map[string]interface{}{"columns": "a,b", "rows": []interface{}{}}, `"columns" is string`},
		{"column not a string", map[string]interface{}{"columns": []interface{}{int64(7)}, "rows": []interface{}{}}, "column 0 is int64"},
		{"missing rows", map[string]interface{}{"columns": []interface{}{"a"}}, `no "rows"`},
		{"rows not a list", map[string]interface{}{"columns": []interface{}{"a"}, "rows": "zap"}, "rows payload is string"},
		{"row not a list", map[string]interface{}{"columns": []interface{}{"a"}, "rows": []interface{}{"zap"}}, "row 0 is string"},
		{"bad cell type", map[string]interface{}{"columns": []interface{}{"a"}, "rows": []interface{}{[]interface{}{int32(1)}}}, "cell 0 has unexpected type"},
	}
	for _, tc := range cases {
		_, err := DecodeResult(tc.payload)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestDecodeChunk covers the cursor frame codec, both directions and the
// malformed cases.
func TestDecodeChunk(t *testing.T) {
	rows := []sqlengine.Row{{sqlengine.NewInt(1)}, {sqlengine.NewInt(2)}}
	chunk, err := DecodeChunk(EncodeChunk(rows, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunk.Rows) != 2 || !chunk.Done {
		t.Fatalf("chunk = %+v", chunk)
	}
	if chunk.Rows[1][0].Int != 2 {
		t.Fatalf("chunk rows: %v", chunk.Rows)
	}
	if _, err := DecodeChunk("nope"); err == nil {
		t.Fatal("non-map chunk decoded")
	}
	if _, err := DecodeChunk(map[string]interface{}{"rows": []interface{}{}}); err == nil {
		t.Fatal("chunk without done decoded")
	}
	if _, err := DecodeChunk(map[string]interface{}{"done": true}); err == nil {
		t.Fatal("chunk without rows decoded")
	}
}
