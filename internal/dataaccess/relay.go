package dataaccess

// Cursor-to-cursor relay: when a streamed query routes to another
// JClarens instance, this server opens a server-side cursor *on the peer*
// (system.cursor.open) and exposes it locally as a sqlengine.RowIter that
// pulls one page at a time — via system.cursor.fetchb when the peer
// advertises the binary row codec, system.cursor.fetch otherwise. Neither
// side ever materializes the result: the peer's memory is bounded by its
// cursor fetch size, this server's by the relay fetch size, and a client
// paging the local cursor registry chains the bound across any number of
// hops. Closing the local stream (or reaping its cursor) closes the
// remote cursor, so an abandoned federated scan releases its resources on
// every server involved.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/unity"
)

// errRelayUnsupported reports a peer without the system.cursor.* methods
// (an older server, or a restricted deployment): callers fall back to the
// materialized whole-result forward.
var errRelayUnsupported = errors.New("dataaccess: peer does not support server-side cursors")

// relayCloseTimeout bounds the best-effort system.cursor.close call a
// relay sends when the local consumer is done: the consumer's own context
// may already be cancelled (that is often *why* the relay is closing), so
// the close runs detached, but a dead peer must not stall the local Close.
const relayCloseTimeout = 5 * time.Second

// relayIter adapts a cursor on a remote JClarens instance to a local
// sqlengine.RowIter. It buffers at most one fetched chunk; Next refills
// the buffer by fetching the next page from the peer. Like every RowIter
// it is single-consumer.
type relayIter struct {
	svc  *Service
	p    *remotePeer
	url  string
	ctx  context.Context
	id   string
	cols []string
	// fetchN is the page size requested per fetch (the peer clamps it).
	fetchN int
	// binary selects system.cursor.fetchb; a FaultNoMethod mid-stream
	// downgrades it to the plain fetch permanently (for this peer).
	binary bool

	buf    []sqlengine.Row
	pos    int
	done   bool  // the peer reported stream exhaustion
	failed error // terminal fetch error, returned on every later Next
	// remoteClosed marks the peer-side cursor as released (by our close
	// call, or implicitly by the peer after a done chunk plus our close).
	remoteClosed bool
	closed       bool
}

// openRelay starts a streaming query on a remote peer and returns the
// relay iterator over its cursor. A peer without the cursor methods
// returns errRelayUnsupported (callers fall back to a materialized
// forward); any other failure is terminal.
func (s *Service) openRelay(ctx context.Context, serverURL, sqlText string) (*relayIter, error) {
	p := s.remotePeer(serverURL)
	cctx, cancel := s.sourceCall(ctx)
	defer cancel()
	res, err := p.c.CallContext(cctx, "system.cursor.open", sqlText)
	if err != nil {
		var f *clarens.Fault
		if errors.As(err, &f) && f.Code == clarens.FaultNoMethod {
			return nil, errRelayUnsupported
		}
		return nil, fmt.Errorf("dataaccess: relay open on %s: %w", serverURL, err)
	}
	m, ok := res.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("dataaccess: relay open on %s: unexpected response %T", serverURL, res)
	}
	id, _ := m["cursor"].(string)
	if id == "" {
		return nil, fmt.Errorf("dataaccess: relay open on %s: response carries no cursor id", serverURL)
	}
	colsRaw, _ := m["columns"].([]interface{})
	cols := make([]string, len(colsRaw))
	for i, c := range colsRaw {
		cols[i], _ = c.(string)
	}
	fetchN := s.cfg.RelayFetchSize
	if fetchN <= 0 {
		fetchN = DefaultFetchSize
	}
	s.obs.relayOpens.Inc()
	s.obs.log(ctx, slog.LevelDebug, "relay: cursor opened",
		slog.String("peer", serverURL), slog.String("cursor", id))
	return &relayIter{
		svc:    s,
		p:      p,
		url:    serverURL,
		ctx:    ctx,
		id:     id,
		cols:   cols,
		fetchN: fetchN,
		// The capability probe shares the open call's source budget
		// (cctx is cancelled only when this function returns).
		binary: s.peerSpeaksBinary(cctx, p),
	}, nil
}

// tableStreamFromRemote returns the stream for one table fetch of a mixed
// (multi-server) query. The stream is *lazy*: the relay cursor is opened
// on the peer only when integration starts consuming this table, not when
// the query is planned — a query whose earlier tables take minutes to
// load must not leave later tables' remote cursors idling toward the
// peer's TTL reaper before their first fetch. Peers that predate the
// cursor protocol fall back to a materialized forward.
func (s *Service) tableStreamFromRemote(ctx context.Context, serverURL, fetchSQL string) sqlengine.RowIter {
	return &lazyIter{open: func() (sqlengine.RowIter, error) {
		it, err := s.openRelay(ctx, serverURL, fetchSQL)
		if err == nil {
			return it, nil
		}
		if !errors.Is(err, errRelayUnsupported) {
			return nil, err
		}
		rs, err := s.forward(ctx, serverURL, fetchSQL)
		if err != nil {
			return nil, err
		}
		return sqlengine.SliceIter(rs), nil
	}}
}

// lazyIter defers producing its inner iterator until first use, so a
// stream's remote resources come alive only when a consumer actually
// arrives. Closing before first use suppresses the open entirely.
type lazyIter struct {
	open func() (sqlengine.RowIter, error)
	it   sqlengine.RowIter
	err  error
}

func (l *lazyIter) resolve() error {
	if l.it == nil && l.err == nil {
		l.it, l.err = l.open()
	}
	return l.err
}

func (l *lazyIter) Columns() []string {
	if l.resolve() != nil {
		return nil
	}
	return l.it.Columns()
}

func (l *lazyIter) Next() (sqlengine.Row, error) {
	if err := l.resolve(); err != nil {
		return nil, err
	}
	return l.it.Next()
}

func (l *lazyIter) Close() error {
	if l.it != nil {
		return l.it.Close()
	}
	if l.err == nil {
		l.err = errors.New("dataaccess: iterator closed before use")
	}
	return nil
}

func (it *relayIter) Columns() []string { return it.cols }

func (it *relayIter) Next() (sqlengine.Row, error) {
	for {
		if it.pos < len(it.buf) {
			row := it.buf[it.pos]
			it.pos++
			return row, nil
		}
		if it.failed != nil {
			return nil, it.failed
		}
		if it.done {
			// The peer released its producer when the stream drained, but
			// the cursor entry lives until closed; close it now — after
			// the final chunk's rows have all been delivered — instead of
			// leaving it to the peer's idle TTL.
			it.closeRemote()
			return nil, io.EOF
		}
		chunk, err := it.fetch()
		if err != nil {
			it.failed = err
			return nil, err
		}
		if len(chunk.Rows) == 0 && !chunk.Done {
			// Our servers never send this (a fetch blocks until it has
			// rows or the end); a peer that does would otherwise spin this
			// loop into an unbounded RPC hammer.
			it.failed = fmt.Errorf("dataaccess: relay fetch from %s: protocol error: empty chunk without done", it.url)
			return nil, it.failed
		}
		it.svc.obs.relayFetches.Inc()
		it.svc.obs.relayRows.Add(int64(len(chunk.Rows)))
		it.buf, it.pos = chunk.Rows, 0
		it.done = chunk.Done
	}
}

// decodeRelayChunk decodes a fetch/fetchb response straight off the wire.
func decodeRelayChunk(d *clarens.Decoder) (interface{}, error) {
	return DecodeChunkFrom(d)
}

// fetch pulls the next page off the remote cursor. Each page is one
// per-source operation: the configured SourceBudget bounds it
// individually, so a slowly *paced* relay (a client trickling through the
// local cursor registry) is never cut off, only a stuck one.
func (it *relayIter) fetch() (*Chunk, error) {
	cctx, cancel := it.svc.sourceCall(it.ctx)
	defer cancel()
	if it.binary {
		res, err := it.p.c.CallDecodeContext(cctx, "system.cursor.fetchb", decodeRelayChunk, it.id, int64(it.fetchN))
		var f *clarens.Fault
		switch {
		case err == nil:
			chunk, ok := res.(*Chunk)
			if !ok {
				return nil, fmt.Errorf("dataaccess: relay fetch from %s: empty response", it.url)
			}
			return chunk, nil
		case errors.As(err, &f) && f.Code == clarens.FaultNoMethod:
			// The peer lost the binary codec (restart without it, or a
			// stale capability answer): renegotiate as plain XML for this
			// and every later fetch.
			it.binary = false
			it.p.mu.Lock()
			it.p.codec = -1
			it.p.mu.Unlock()
			it.svc.obs.relayFallbacks.Inc()
		default:
			return nil, fmt.Errorf("dataaccess: relay fetch from %s: %w", it.url, err)
		}
	}
	res, err := it.p.c.CallDecodeContext(cctx, "system.cursor.fetch", decodeRelayChunk, it.id, int64(it.fetchN))
	if err != nil {
		return nil, fmt.Errorf("dataaccess: relay fetch from %s: %w", it.url, err)
	}
	chunk, ok := res.(*Chunk)
	if !ok {
		return nil, fmt.Errorf("dataaccess: relay fetch from %s: empty response", it.url)
	}
	return chunk, nil
}

// closeRemote releases the peer-side cursor, best-effort and at most
// once. It runs detached from the relay's context (which may already be
// cancelled) but bounded, so closing a relay to a dead peer returns
// promptly; if the close is lost the peer's idle-TTL reaper collects the
// cursor instead.
func (it *relayIter) closeRemote() {
	if it.remoteClosed {
		return
	}
	it.remoteClosed = true
	//lint:ignore ctxflow the close must survive the relay's already-cancelled request context; it is bounded by relayCloseTimeout and the peer's idle-TTL reaper backstops a lost close
	ctx, cancel := context.WithTimeout(context.Background(), relayCloseTimeout)
	defer cancel()
	it.p.c.CallContext(ctx, "system.cursor.close", it.id) //nolint:errcheck // best-effort release
}

// Close releases the relay: the remote cursor is closed (cancelling the
// peer's producing query mid-scan) and later Next calls are undefined, as
// for every RowIter. Idempotent.
func (it *relayIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.closeRemote()
	return nil
}

// streamWithRemote is the streaming counterpart of queryWithRemote: a
// query whose tables all live on one remote server becomes a pure cursor
// relay (no hop materializes anything), and a mixed query integrates its
// inputs incrementally — remote tables relayed page by page into unity's
// integration engine — then streams the integrated result from memory.
func (s *Service) streamWithRemote(ctx context.Context, key, sqlText string, params []sqlengine.Value, epoch int64) (*StreamResult, error) {
	t := trackFrom(ctx)
	tr := t.now()
	rp, err := s.resolveRemoteTables(ctx, sqlText)
	t.addRoute(tr)
	if err != nil {
		return nil, err
	}
	t.noteRemote(rp)
	if rp.singleURL != "" && len(params) == 0 {
		t.setClass(classRemote)
		s.obs.log(ctx, slog.LevelDebug, "route: relay", slog.String("peer", rp.singleURL))
		it, err := s.openRelay(ctx, rp.singleURL, sqlText)
		switch {
		case err == nil:
			s.stats.Forwarded.Add(1)
			return s.wrapStream(it, RouteRemote, 2, key, rp.deps, epoch), nil
		case errors.Is(err, errRelayUnsupported):
			// Peer predates the cursor protocol: whole-query materialized
			// forward, streamed from memory (the pre-relay behaviour).
			tb := t.now()
			rs, ferr := s.forward(ctx, rp.singleURL, sqlText)
			t.addBackend(tb)
			if ferr != nil {
				return nil, ferr
			}
			s.stats.Forwarded.Add(1)
			qr := &QueryResult{ResultSet: rs, Route: RouteRemote, Servers: 2}
			s.streamCacheFill(key, qr, rp.deps, epoch)
			return &StreamResult{cols: qr.Columns, Route: RouteRemote, Servers: 2, iter: sqlengine.SliceIter(qr.ResultSet)}, nil
		default:
			return nil, err
		}
	}
	if sr, ok, err := s.streamMixed(ctx, key, rp, params, epoch); ok || err != nil {
		return sr, err
	}
	qr, deps, err := s.queryWithRemoteResolved(ctx, rp, sqlText, params)
	if err != nil {
		return nil, err
	}
	s.streamCacheFill(key, qr, deps, epoch)
	return &StreamResult{cols: qr.Columns, Route: qr.Route, Servers: qr.Servers, iter: sqlengine.SliceIter(qr.ResultSet)}, nil
}

// streamMixed serves a mixed local/remote query through the pipelined
// operators when the integration statement qualifies: each table's stream
// — local federation cursor or lazy remote relay — feeds the join/union
// pipeline directly, so neither the scratch engine nor this server ever
// materializes the inputs, and remote cursors open only when the operator
// actually consumes their side. ok=false (with nil error) means the shape
// needs the scratch engine and the caller should run the materialized
// integration instead.
func (s *Service) streamMixed(ctx context.Context, key string, rp *remotePlan, params []sqlengine.Value, epoch int64) (*StreamResult, bool, error) {
	t := trackFrom(ctx)
	t.setClass(classMixed)
	if s.fed.DisableStreamOps {
		s.obs.streamScratch.Inc()
		t.noteStreamExec(&unity.StreamExec{Operator: "scratch", Fallback: "stream operators disabled"})
		return nil, false, nil
	}
	sp, reason := unity.PlanIntegrateStream(rp.sel)
	if sp == nil {
		s.obs.streamScratch.Inc()
		s.obs.log(ctx, slog.LevelDebug, "route: mixed (scratch)", slog.String("fallback", reason))
		t.noteStreamExec(&unity.StreamExec{Operator: "scratch", Fallback: reason})
		return nil, false, nil
	}
	s.obs.log(ctx, slog.LevelDebug, "route: mixed (pipelined)",
		slog.Int("tables", len(rp.tables)), slog.Int("remote_tables", len(rp.remoteHost)))
	loads := make([]unity.StreamLoad, 0, len(rp.tables))
	closeLoads := func() {
		for _, ld := range loads {
			ld.Iter.Close()
		}
	}
	serversTouched := map[string]bool{}
	for _, tbl := range rp.tables {
		fetch := unity.RemoteFetchSQL(rp.sel, tbl)
		var it sqlengine.RowIter
		if rp.local[tbl] {
			var err error
			it, _, err = s.fed.QueryStreamContext(ctx, fetch)
			if err != nil {
				closeLoads()
				return nil, false, err
			}
		} else {
			it = s.tableStreamFromRemote(ctx, rp.remoteHost[tbl], fetch)
			serversTouched[rp.remoteHost[tbl]] = true
		}
		loads = append(loads, unity.StreamLoad{Logical: tbl, Iter: it})
	}
	out, stats, err := unity.IntegrateStream(ctx, sp, loads, params, s.cfg.ScratchMaxBytes)
	if err != nil {
		return nil, false, err // IntegrateStream closed the loads
	}
	s.stats.Mixed.Add(1)
	s.obs.streamPipelined.Inc()
	t.noteStreamExec(&unity.StreamExec{Operator: "pipelined mixed", Stats: stats})
	return s.wrapStream(out, RouteMixed, 1+len(serversTouched), key, rp.deps, epoch), true, nil
}
