package dataaccess

// Tests for the observability stack: the Prometheus endpoint under
// concurrent mixed traffic, slow-ring bounds and eviction order at the
// service level, explain-versus-execute route agreement, and query-id
// propagation across a relay hop (both servers log the same id).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/sqlengine"
)

// obsTestbed builds a two-mart service (one POOL-supported MySQL mart,
// one unity-routed MS-SQL mart) behind a clarens front end with the
// /metrics endpoint wired.
func obsTestbed(t *testing.T, cfg Config, tag string) (*Service, string) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	_, mySpec := mkMart(t, "mart_obs_my_"+tag, sqlengine.DialectMySQL, "events", 20)
	_, msSpec := mkMart(t, "mart_obs_ms_"+tag, sqlengine.DialectMSSQL, "runsinfo", 8)
	addMart(t, s, "mart_obs_my_"+tag, mySpec, "gridsql-mysql")
	addMart(t, s, "mart_obs_ms_"+tag, msSpec, "gridsql-mssql")
	srv := clarens.NewServer(true)
	s.RegisterMethods(srv)
	srv.SetMetrics(s.Metrics().WritePrometheus)
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	s.SetURL(url)
	return s, url
}

// TestMetricsEndpointConcurrentTraffic scrapes /metrics while mixed
// traffic (RAL, unity, streamed, cached) runs, then checks the final
// exposition carries per-route counters and latency histograms.
func TestMetricsEndpointConcurrentTraffic(t *testing.T) {
	s, url := obsTestbed(t, Config{Name: "obs-mix", CacheSize: 32}, "mix")

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Query("SELECT event_id, e_tot FROM events WHERE run = 101"); err != nil {
					t.Errorf("ral query: %v", err)
					return
				}
				if _, err := s.Query(fmt.Sprintf("SELECT event_id FROM runsinfo WHERE run = %d", 100+i%2)); err != nil {
					t.Errorf("unity query: %v", err)
					return
				}
				sr, err := s.QueryStreamContext(context.Background(), "SELECT event_id FROM events")
				if err != nil {
					t.Errorf("stream: %v", err)
					return
				}
				if err := sr.ForEach(func(sqlengine.Row) error { return nil }); err != nil {
					t.Errorf("stream drain: %v", err)
					return
				}
			}
		}(w)
	}
	// Scrape concurrently with the traffic: the endpoint must stay
	// well-formed mid-flight, not just at rest.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 10; i++ {
			resp, err := http.Get(url + "/metrics")
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-scrapeDone

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`gridrdb_queries_total{route="pool-ral"}`,
		`gridrdb_queries_total{route="unity-pushdown"}`,
		`gridrdb_query_duration_seconds_bucket{route="pool-ral",le="+Inf"}`,
		`gridrdb_query_duration_seconds_sum{route="pool-ral"}`,
		"gridrdb_queries_inflight 0",
		"gridrdb_rows_streamed_total",
		"gridrdb_cache_hits_total",
		"gridrdb_cursors_open 0",
		"# TYPE gridrdb_query_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Route counters must account for every query: 4 workers x 25 iters x
	// (1 RAL + 1 unity + 1 streamed RAL), minus whatever the cache served.
	snap := s.Metrics().Snapshot()
	total := int64(0)
	for k, v := range snap {
		if strings.HasPrefix(k, "gridrdb_queries_total{") {
			total += v.(int64)
		}
	}
	if want := int64(workers * perWorker * 3); total != want {
		t.Errorf("sum of per-route query counters = %d, want %d", total, want)
	}
}

// TestSlowRingBoundsAndEviction checks the slow log at the service level:
// a 3-deep ring over a 1ns threshold keeps only the three most recent
// queries, newest first, while the lifetime total keeps counting.
func TestSlowRingBoundsAndEviction(t *testing.T) {
	s, _ := obsTestbed(t, Config{
		Name:               "obs-slow",
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLogSize:   3,
	}, "slow")

	for i := 1; i <= 5; i++ {
		if _, err := s.Query(fmt.Sprintf("SELECT event_id FROM events WHERE event_id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SlowQueryCap(); got != 3 {
		t.Fatalf("cap = %d, want 3", got)
	}
	if got := s.SlowQueryTotal(); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	entries := s.SlowQueries()
	if len(entries) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(entries))
	}
	for i, wantID := range []int{5, 4, 3} { // most recent first
		want := fmt.Sprintf("event_id = %d", wantID)
		if !strings.Contains(entries[i].SQL, want) {
			t.Errorf("entry %d: sql = %q, want it to contain %q", i, entries[i].SQL, want)
		}
	}
	e := entries[0]
	if e.QueryID == "" {
		t.Error("captured entry has no query id")
	}
	if e.Route != "pool-ral" {
		t.Errorf("route = %q, want pool-ral", e.Route)
	}
	if e.Duration <= 0 {
		t.Errorf("duration = %v", e.Duration)
	}
	if e.PhaseBackend <= 0 {
		t.Errorf("backend phase = %v, want > 0", e.PhaseBackend)
	}
	if e.Explain == nil {
		t.Fatal("captured entry has no explain plan")
	}
	if got := e.Explain["route"]; got != "pool-ral" {
		t.Errorf("explain route = %v, want pool-ral", got)
	}
}

// TestExplainMatchesExecutedRoute checks that the route system.explain
// predicts is the one execution takes, by reading the per-route query
// counter before and after actually running each query.
func TestExplainMatchesExecutedRoute(t *testing.T) {
	s, _ := obsTestbed(t, Config{Name: "obs-explain"}, "explain")

	classIdx := func(name string) int32 {
		for i, n := range classNames {
			if n == name {
				return int32(i)
			}
		}
		t.Fatalf("unknown route class %q", name)
		return -1
	}
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT event_id, e_tot FROM events WHERE run = 101", "pool-ral"},
		{"SELECT event_id FROM runsinfo WHERE run = 101", "unity-pushdown"},
		{"SELECT e.event_id, r.e_tot FROM events e JOIN runsinfo r ON e.run = r.run", "unity-decomposed"},
	}
	for _, tc := range cases {
		m, err := s.Explain(context.Background(), tc.sql)
		if err != nil {
			t.Fatalf("explain %q: %v", tc.sql, err)
		}
		if got := m["route"]; got != tc.want {
			t.Errorf("explain route for %q = %v, want %q", tc.sql, got, tc.want)
			continue
		}
		if cached := m["cached"]; cached != false {
			t.Errorf("cached = %v before any execution", cached)
		}
		c := classIdx(tc.want)
		before := s.obs.queries[c].Value()
		if _, err := s.Query(tc.sql); err != nil {
			t.Fatalf("execute %q: %v", tc.sql, err)
		}
		if after := s.obs.queries[c].Value(); after != before+1 {
			t.Errorf("route counter %q moved %d -> %d after executing %q; explain disagrees with execution",
				tc.want, before, after, tc.sql)
		}
	}
}

// TestExplainRemoteRoute checks the forwarded shape: on a server hosting
// nothing, explain predicts the remote route with the peer's URL and a
// relay tier, and execution then takes it.
func TestExplainRemoteRoute(t *testing.T) {
	p := newRelayPair(t, Config{Name: "xp-host"}, Config{Name: "xp-fwd"}, "mart_xp_remote", "events", 30)
	defer p.close()

	const sql = "SELECT event_id FROM events WHERE run = 101"
	m, err := p.fwd.Explain(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["route"]; got != "remote" {
		t.Fatalf("explain route = %v, want remote (%v)", got, m)
	}
	if got, _ := m["forward_url"].(string); got != p.host.cfg.URL {
		t.Errorf("forward_url = %q, want %q", got, p.host.cfg.URL)
	}
	if tier, _ := m["relay"].(string); tier != "unnegotiated" {
		t.Errorf("relay tier before first contact = %q, want unnegotiated", tier)
	}
	before := p.fwd.obs.queries[classRemote].Value()
	if _, err := p.fwd.Query(sql); err != nil {
		t.Fatal(err)
	}
	if after := p.fwd.obs.queries[classRemote].Value(); after != before+1 {
		t.Errorf("remote route counter moved %d -> %d; explain disagrees with execution", before, after)
	}
	// The forward probed the peer's capabilities, so the tier is now
	// resolved.
	m, err = p.fwd.Explain(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := m["relay"].(string); tier != "binary" {
		t.Errorf("relay tier after contact = %q, want binary", tier)
	}
}

// logSink is a goroutine-safe line buffer for slog JSON output.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (ls *logSink) Write(p []byte) (int, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.buf.Write(p)
}

func (ls *logSink) String() string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.buf.String()
}

// TestQueryIDPropagatesAcrossRelay runs a streamed federated query and
// checks both servers logged it under the same query id: the forwarding
// edge mints the id, the HTTP header carries it to the peer, and the
// peer's own log lines restore it.
func TestQueryIDPropagatesAcrossRelay(t *testing.T) {
	var fwdLog, hostLog logSink
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	p := newRelayPair(t,
		Config{Name: "qid-host", Logger: slog.New(slog.NewJSONHandler(&hostLog, opts))},
		Config{Name: "qid-fwd", Logger: slog.New(slog.NewJSONHandler(&fwdLog, opts))},
		"mart_qid", "events", 500)
	defer p.close()

	sr, err := p.fwd.QueryStreamContext(context.Background(), "SELECT event_id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := sr.ForEach(func(sqlengine.Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("streamed %d rows, want 500", n)
	}

	// The forwarding server logged the relay decision with the query id it
	// minted at its edge.
	id := ""
	for _, line := range strings.Split(fwdLog.String(), "\n") {
		if strings.Contains(line, `"msg":"route: relay"`) {
			if _, after, ok := strings.Cut(line, `"query_id":"`); ok {
				id, _, _ = strings.Cut(after, `"`)
			}
		}
	}
	if id == "" {
		t.Fatalf("forwarding server logged no relay decision with a query id:\n%s", fwdLog.String())
	}
	// The host server's log must carry the SAME id on its own routing
	// records for the relayed cursor's producing query.
	if !strings.Contains(hostLog.String(), `"query_id":"`+id+`"`) {
		t.Errorf("host server log does not carry forwarded query id %q:\n%s", id, hostLog.String())
	}
}

// TestQueryIDStableAcrossForward does the same for the materialized
// forward path (dataaccess.queryb).
func TestQueryIDStableAcrossForward(t *testing.T) {
	var fwdLog, hostLog logSink
	opts := &slog.HandlerOptions{Level: slog.LevelDebug}
	p := newRelayPair(t,
		Config{Name: "qidf-host", Logger: slog.New(slog.NewJSONHandler(&hostLog, opts))},
		Config{Name: "qidf-fwd", Logger: slog.New(slog.NewJSONHandler(&fwdLog, opts))},
		"mart_qidf", "events", 40)
	defer p.close()

	if _, err := p.fwd.Query("SELECT event_id FROM events WHERE run = 101"); err != nil {
		t.Fatal(err)
	}
	id := ""
	for _, line := range strings.Split(fwdLog.String(), "\n") {
		if strings.Contains(line, `"msg":"route: forward"`) {
			if _, after, ok := strings.Cut(line, `"query_id":"`); ok {
				id, _, _ = strings.Cut(after, `"`)
			}
		}
	}
	if id == "" {
		t.Fatalf("forwarding server logged no forward decision with a query id:\n%s", fwdLog.String())
	}
	if !strings.Contains(hostLog.String(), `"query_id":"`+id+`"`) {
		t.Errorf("host server log does not carry forwarded query id %q:\n%s", id, hostLog.String())
	}
}

// TestObsvRaceHammer drives queries, streams, scrapes, slow-ring reads
// and stats snapshots concurrently; run under -race it audits that every
// counter on these paths is properly synchronized.
func TestObsvRaceHammer(t *testing.T) {
	s, url := obsTestbed(t, Config{
		Name:               "obs-race",
		CacheSize:          16,
		SlowQueryThreshold: time.Nanosecond,
	}, "race")

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (w + i) % 3 {
				case 0:
					s.Query("SELECT event_id FROM events WHERE run = 101") //nolint:errcheck
				case 1:
					sr, err := s.QueryStreamContext(context.Background(), "SELECT event_id FROM events")
					if err == nil {
						sr.ForEach(func(sqlengine.Row) error { return nil }) //nolint:errcheck
					}
				case 2:
					s.Explain(context.Background(), "SELECT event_id FROM runsinfo") //nolint:errcheck
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(url + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				s.Metrics().Snapshot()
				s.SlowQueries()
				s.CursorStats()
				s.CacheStats()
			}
		}()
	}
	wg.Wait()
}
