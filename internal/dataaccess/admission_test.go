package dataaccess

// Tests for admission control and per-tenant QoS: the queue-with-deadline
// must distinguish "your deadline expired" (FaultCancelled) from "the
// server shed you" (FaultOverloaded), never leak an in-flight slot across
// the grant/abandon race, and shed before any parsing or backend work.
// Session quotas must refuse loudly at the cap, release reservations on
// every cursor exit path (including mid-stream trips over a federated
// relay), and reset when the session ends.

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/leaktest"
	"gridrdb/internal/sqlengine"
)

// admService builds a one-mart service with the given admission config.
// Callers must Close it themselves before their leak check runs —
// t.Cleanup would fire after the deferred leaktest verify, with the
// service's pool and janitor goroutines still alive.
func admService(t *testing.T, mart, table string, rows int, cfg Config) *Service {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = mart + "-svc"
	}
	s := New(cfg)
	_, spec := mkMart(t, mart, sqlengine.DialectMySQL, table, rows)
	addMart(t, s, mart, spec, "gridsql-mysql")
	return s
}

// holdSlot opens an undrained stream, pinning one in-flight slot until
// the returned release func runs.
func holdSlot(t *testing.T, s *Service, table string) func() {
	t.Helper()
	sr, err := s.QueryStreamContext(context.Background(), "SELECT event_id FROM "+table)
	if err != nil {
		t.Fatalf("holdSlot: %v", err)
	}
	return func() { sr.Close() }
}

// waitQueued polls until the gate reports n queued waiters.
func waitQueued(t *testing.T, s *Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ls := s.LoadStats(); ls.Queued == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (now %d)", n, s.LoadStats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionQueuedCtxExpiryIsCancelled: a queued waiter whose own
// context expires gets the cancellation fault class promptly — not
// FaultOverloaded, which would tell the client to back off and retry
// something it chose to abandon — and its slot claim is not leaked.
func TestAdmissionQueuedCtxExpiryIsCancelled(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admctx", "adm_ev", 50, Config{
		MaxInFlight: 1, AdmissionQueue: 4, AdmissionTimeout: 10 * time.Second,
	})
	defer s.Close()
	release := holdSlot(t, s, "adm_ev")

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.QueryContext(ctx, "SELECT event_id FROM adm_ev")
	waited := time.Since(start)
	if err == nil {
		t.Fatal("queued waiter should fail when its context expires")
	}
	if clarens.IsOverloaded(err) {
		t.Fatalf("caller's own deadline must not surface as overload: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if f := clarens.FaultFor(err); f.Code != clarens.FaultCancelled {
		t.Fatalf("wire fault = %d, want FaultCancelled (%d)", f.Code, clarens.FaultCancelled)
	}
	if waited > 2*time.Second {
		t.Fatalf("abandoned waiter took %v to return; should track its 50ms deadline", waited)
	}

	// The abandoned waiter must not have consumed the slot: once the
	// holder releases, the gate admits immediately again.
	release()
	if _, err := s.QueryContext(context.Background(), "SELECT event_id FROM adm_ev"); err != nil {
		t.Fatalf("slot leaked by abandoned waiter: %v", err)
	}
	ls := s.LoadStats()
	if ls.Cancelled != 1 {
		t.Errorf("cancelled count = %d, want 1", ls.Cancelled)
	}
}

// TestAdmissionQueueDeadlineSheds: a waiter that outlives the queue
// deadline is shed with FaultOverloaded — the retryable refusal.
func TestAdmissionQueueDeadlineSheds(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admdl", "adm_ev2", 50, Config{
		MaxInFlight: 1, AdmissionQueue: 4, AdmissionTimeout: 60 * time.Millisecond,
	})
	defer s.Close()
	release := holdSlot(t, s, "adm_ev2")
	defer release()

	start := time.Now()
	_, err := s.QueryContext(context.Background(), "SELECT event_id FROM adm_ev2")
	waited := time.Since(start)
	if !clarens.IsOverloaded(err) {
		t.Fatalf("want FaultOverloaded after queue deadline, got %v", err)
	}
	if waited < 50*time.Millisecond || waited > 2*time.Second {
		t.Errorf("shed after %v, want ~60ms queue deadline", waited)
	}
	if ls := s.LoadStats(); ls.Shed != 1 {
		t.Errorf("shed count = %d, want 1", ls.Shed)
	}
}

// TestAdmissionShedDoesNoWork: a request refused at a full queue is shed
// before any parsing, planning, or backend contact — provable by sending
// garbage SQL, which comes back as overload (not a parse error) while
// the gate is saturated, and as a parse error once it is not. The cursor
// path likewise registers nothing when its stream open is shed.
func TestAdmissionShedDoesNoWork(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admwork", "adm_ev3", 50, Config{
		MaxInFlight: 1, AdmissionQueue: -1, // no queue: saturation sheds instantly
	})
	defer s.Close()
	release := holdSlot(t, s, "adm_ev3")

	start := time.Now()
	_, err := s.QueryContext(context.Background(), "THIS IS NOT SQL AT ALL")
	if !clarens.IsOverloaded(err) {
		t.Fatalf("saturated gate should shed before parsing; got %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("queue-full shed took %v, want immediate", waited)
	}

	if _, err := s.OpenCursor(context.Background(), "SELECT event_id FROM adm_ev3"); !clarens.IsOverloaded(err) {
		t.Fatalf("cursor open should shed at the gate; got %v", err)
	}
	if n := s.CursorCount(); n != 0 {
		t.Errorf("shed cursor open left %d cursors registered", n)
	}

	release()
	_, err = s.QueryContext(context.Background(), "THIS IS NOT SQL AT ALL")
	if err == nil || clarens.IsOverloaded(err) {
		t.Fatalf("unsaturated gate should reach the parser: %v", err)
	}
}

// TestAdmissionWeightedDrain: with the slot holder gone, a backlog of
// weight-2 and weight-1 tenants drains in stride order — the heavier
// class roughly twice as often, the lighter one never starved.
func TestAdmissionWeightedDrain(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admwt", "adm_ev4", 20, Config{
		MaxInFlight: 1, AdmissionQueue: 8, AdmissionTimeout: 10 * time.Second,
		TenantWeights: map[string]int{"alice": 2},
	})
	defer s.Close()
	release := holdSlot(t, s, "adm_ev4")

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	spawn := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := WithCaller(context.Background(), tenant, "")
				if _, err := s.QueryContext(ctx, "SELECT event_id FROM adm_ev4 WHERE run = 101"); err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
			}()
		}
	}
	spawn("alice", 4)
	spawn("bob", 2)
	waitQueued(t, s, 6)

	release()
	wg.Wait()
	if len(order) != 6 {
		t.Fatalf("completions = %d, want 6", len(order))
	}
	count := func(prefix []string, tenant string) int {
		n := 0
		for _, x := range prefix {
			if x == tenant {
				n++
			}
		}
		return n
	}
	// Expected stride sequence is alice bob alice alice bob alice; allow
	// scheduling slack but require the proportional shape.
	if count(order[:3], "alice") < 2 {
		t.Errorf("weight-2 tenant got %d of first 3 grants, want >= 2 (order %v)", count(order[:3], "alice"), order)
	}
	if count(order[:5], "bob") < 1 {
		t.Errorf("weight-1 tenant starved across first 5 grants (order %v)", order)
	}
}

// TestSessionCursorQuota: opens past the per-session cap refuse with
// FaultOverloaded, a close returns the reservation, EndSession resets
// the budget, and sessionless callers are not quota-tracked.
func TestSessionCursorQuota(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admcq", "adm_ev5", 50, Config{SessionMaxCursors: 2})
	defer s.Close()
	ctx := WithCaller(context.Background(), "alice", "sess-a")
	q := "SELECT event_id FROM adm_ev5"

	c1, err := s.OpenCursor(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.OpenCursor(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenCursor(ctx, q); !clarens.IsOverloaded(err) {
		t.Fatalf("third open should trip the 2-cursor quota; got %v", err)
	}

	s.CloseCursor(c1.ID)
	c3, err := s.OpenCursor(ctx, q)
	if err != nil {
		t.Fatalf("close should have returned the reservation: %v", err)
	}

	// Ending the session resets its budget even with cursors open (the
	// session is gone; its replacement starts fresh).
	s.EndSession("sess-a")
	c4, err := s.OpenCursor(ctx, q)
	if err != nil {
		t.Fatalf("EndSession should reset the cursor budget: %v", err)
	}

	// A caller with no session is not quota-tracked.
	anon := context.Background()
	var anonCursors []*CursorInfo
	for i := 0; i < 4; i++ {
		ci, err := s.OpenCursor(anon, q)
		if err != nil {
			t.Fatalf("sessionless open %d: %v", i, err)
		}
		anonCursors = append(anonCursors, ci)
	}

	for _, ci := range append(anonCursors, c2, c3, c4) {
		s.CloseCursor(ci.ID)
	}
	if n := s.CursorCount(); n != 0 {
		t.Errorf("%d cursors left open", n)
	}
	if got := s.LoadStats(); got.Tenants != nil {
		for _, tl := range got.Tenants {
			if tl.Tenant == "alice" && tl.QuotaDeniedCursors != 1 {
				t.Errorf("alice quota denials = %d, want 1", tl.QuotaDeniedCursors)
			}
		}
	}
}

// TestSessionByteQuotaTripsMidStream: a session streaming past its byte
// budget gets FaultOverloaded mid-stream — after real rows flowed — and
// the producing query's resources are released. EndSession resets the
// budget so the next login streams again.
func TestSessionByteQuotaTripsMidStream(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admbq", "adm_ev6", 200, Config{SessionMaxBytes: 512})
	defer s.Close()
	ctx := WithCaller(context.Background(), "bob", "sess-b")
	q := "SELECT event_id, run, e_tot FROM adm_ev6"

	sr, err := s.QueryStreamContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	err = sr.ForEach(func(sqlengine.Row) error { rows++; return nil })
	if !clarens.IsOverloaded(err) {
		t.Fatalf("stream should trip the byte quota; got %v after %d rows", err, rows)
	}
	if rows == 0 {
		t.Error("quota tripped before any row was delivered; budget should admit the early rows")
	}
	if rows >= 200 {
		t.Error("all 200 rows flowed; quota never tripped mid-stream")
	}

	// The budget is per-session lifetime: the same session is refused on
	// its next stream almost immediately.
	sr2, err := s.QueryStreamContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr2.ForEach(func(sqlengine.Row) error { return nil }); !clarens.IsOverloaded(err) {
		t.Fatalf("exhausted session streamed again without tripping: %v", err)
	}

	// EndSession resets the meter: rows flow again.
	s.EndSession("sess-b")
	sr3, err := s.QueryStreamContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rows = 0
	err = sr3.ForEach(func(sqlengine.Row) error { rows++; return nil })
	if !clarens.IsOverloaded(err) || rows == 0 {
		t.Fatalf("reset session should stream until the budget trips again (rows=%d err=%v)", rows, err)
	}
}

// TestSessionByteQuotaReleasesRelayCursor: a mid-stream quota trip on a
// federated relay closes the remote cursor — the peer's registry drains
// to zero and neither server strands a goroutine.
func TestSessionByteQuotaReleasesRelayCursor(t *testing.T) {
	defer leaktest.Check(t)()
	p := newRelayPair(t, Config{}, Config{SessionMaxBytes: 512}, "admrelay", "adm_rev", 500)
	defer p.close()

	ctx := WithCaller(context.Background(), "carol", "sess-r")
	sr, err := p.fwd.QueryStreamContext(ctx, "SELECT event_id, run, e_tot FROM adm_rev")
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	err = sr.ForEach(func(sqlengine.Row) error { rows++; return nil })
	if !clarens.IsOverloaded(err) {
		t.Fatalf("relayed stream should trip the byte quota; got %v after %d rows", err, rows)
	}

	// The relay must release the remote cursor promptly, not wait for
	// the peer's TTL reaper.
	deadline := time.Now().Add(5 * time.Second)
	for p.host.CursorCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("peer still holds %d cursors after the quota trip", p.host.CursorCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdmissionFaultCodeOnTheWire: a shed query reaches an XML-RPC
// client as fault code 105 (FaultOverloaded) — distinct from 104
// (FaultCancelled) — and per-session quotas key on the login session,
// so the same user's second login gets a fresh cursor budget.
func TestAdmissionFaultCodeOnTheWire(t *testing.T) {
	defer leaktest.Check(t)()
	// Capacity 2 so the later cursor-budget phase can hold one cursor
	// (cursors pin in-flight slots) while a fresh session opens another.
	s := admService(t, "admwire", "adm_ev7", 50, Config{
		MaxInFlight: 2, AdmissionQueue: -1, SessionMaxCursors: 1,
	})
	defer s.Close()
	front := clarens.NewServer(false)
	front.AddUser("alice", "pw")
	s.RegisterMethods(front)
	url, err := front.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	s.SetURL(url)

	c := clarens.NewClient(url)
	if err := c.LoginContext(context.Background(), "alice", "pw"); err != nil {
		t.Fatal(err)
	}

	release := holdSlot(t, s, "adm_ev7")
	release2 := holdSlot(t, s, "adm_ev7")
	_, err = c.Call("dataaccess.query", "SELECT event_id FROM adm_ev7")
	var f *clarens.Fault
	if !errors.As(err, &f) || f.Code != clarens.FaultOverloaded {
		t.Fatalf("want wire fault %d, got %v", clarens.FaultOverloaded, err)
	}
	release()
	release2()

	// Quota is per login session: the first session exhausts its single
	// cursor, a second login for the same user starts fresh.
	res, err := c.Call("system.cursor.open", "SELECT event_id FROM adm_ev7")
	if err != nil {
		t.Fatal(err)
	}
	id, _ := res.(map[string]interface{})["cursor"].(string)
	_, err = c.Call("system.cursor.open", "SELECT event_id FROM adm_ev7")
	if !errors.As(err, &f) || f.Code != clarens.FaultOverloaded {
		t.Fatalf("cursor quota over the wire: want fault %d, got %v", clarens.FaultOverloaded, err)
	}
	c2 := clarens.NewClient(url)
	if err := c2.LoginContext(context.Background(), "alice", "pw"); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Call("system.cursor.open", "SELECT event_id FROM adm_ev7")
	if err != nil {
		t.Fatalf("fresh session should have a fresh cursor budget: %v", err)
	}
	id2, _ := res2.(map[string]interface{})["cursor"].(string)
	if _, err := c.Call("system.cursor.close", id); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Call("system.cursor.close", id2); err != nil {
		t.Fatal(err)
	}
}

// TestExplainReportsAdmissionOutcome: system.explain carries the gate's
// answer for a query arriving now — admit, queue, or would-shed — and
// explain itself is never gated, so a saturated server still explains.
func TestExplainReportsAdmissionOutcome(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admex", "adm_ev8", 50, Config{
		MaxInFlight: 1, AdmissionQueue: 1, AdmissionTimeout: 10 * time.Second,
	})
	defer s.Close()
	q := "SELECT event_id FROM adm_ev8"

	m, err := s.Explain(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if m["admission"] != "admit" {
		t.Errorf("idle gate: admission = %v, want admit", m["admission"])
	}

	release := holdSlot(t, s, "adm_ev8")
	m, err = s.Explain(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if m["admission"] != "queue" {
		t.Errorf("saturated gate: admission = %v, want queue", m["admission"])
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.QueryContext(context.Background(), q); err != nil {
			t.Errorf("queued waiter: %v", err)
		}
	}()
	waitQueued(t, s, 1)
	m, err = s.Explain(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if m["admission"] != "would-shed" {
		t.Errorf("full queue: admission = %v, want would-shed", m["admission"])
	}
	release()
	wg.Wait()

	// Without a gate there is no admission key at all.
	s2 := admService(t, "admex2", "adm_ev9", 5, Config{})
	defer s2.Close()
	m, err = s2.Explain(context.Background(), "SELECT event_id FROM adm_ev9")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["admission"]; ok {
		t.Error("gateless service should not report an admission outcome")
	}
}

// TestSlowQueryRecordsAdmissionOutcome: slow-query captures say where
// the time went — an "immediate" admit means the backend was slow, a
// "queued Nms" means the gate was.
func TestSlowQueryRecordsAdmissionOutcome(t *testing.T) {
	defer leaktest.Check(t)()
	s := admService(t, "admslow", "adm_ev10", 20, Config{
		MaxInFlight:        2,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		Logger:             slog.New(slog.DiscardHandler),
	})
	defer s.Close()
	if _, err := s.QueryContext(context.Background(), "SELECT event_id FROM adm_ev10"); err != nil {
		t.Fatal(err)
	}
	entries := s.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow entry captured")
	}
	if got := entries[0].Explain["admission"]; got != "immediate" {
		t.Errorf("slow entry admission = %v, want immediate", got)
	}
}
