package dataaccess

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gridrdb/internal/sqlengine"
	"gridrdb/internal/unity"
	"gridrdb/internal/xspec"
)

// Tracker implements §4.9: "after a fixed interval of time, a thread is
// run against the back-end databases to generate a new XSpec for each
// database. The size of the newly created XSpec is compared against the
// size of the older XSpec file. If the sizes are equal, the files are
// compared using their md5 sums. If there is any change ... the older
// version of the XSpec is replaced by the new one [and] the server then
// uses the new XSpec file to update the schema."
type Tracker struct {
	svc      *Service
	interval time.Duration

	mu    sync.Mutex
	known map[string]trackedSpec

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	checks  atomic.Int64
	updates atomic.Int64
}

// trackedSpec is the last observed generation of one source's spec: the
// fingerprint answers "did anything change?" cheaply, and the retained
// spec lets a detected change be diffed down to the tables it touched.
type trackedSpec struct {
	fp   xspec.Fingerprint
	spec *xspec.LowerSpec
}

// NewTracker creates a tracker for a service; interval <= 0 means the
// tracker only runs on explicit CheckNow calls (useful for tests).
func NewTracker(svc *Service, interval time.Duration) *Tracker {
	return &Tracker{
		svc:      svc,
		interval: interval,
		known:    make(map[string]trackedSpec),
		stop:     make(chan struct{}),
	}
}

// Start launches the periodic regeneration thread.
func (t *Tracker) Start() {
	if t.interval <= 0 {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(t.interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-ticker.C:
				t.CheckNow()
			}
		}
	}()
}

// Stop halts the periodic thread.
func (t *Tracker) Stop() {
	t.stopped.Do(func() { close(t.stop) })
	t.wg.Wait()
}

// Stats reports (checks performed, schema updates applied).
func (t *Tracker) Stats() (checks, updates int64) {
	return t.checks.Load(), t.updates.Load()
}

// CheckNow regenerates the XSpec of every source and hot-reloads any whose
// fingerprint changed. It returns the names of updated sources.
func (t *Tracker) CheckNow() ([]string, error) {
	t.checks.Add(1)
	var updated []string
	var firstErr error
	for _, name := range t.svc.fed.Sources() {
		changed, err := t.checkSource(name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if changed {
			updated = append(updated, name)
		}
	}
	if len(updated) > 0 {
		// Newly visible tables must be discoverable by other instances.
		if err := t.svc.PublishAll(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return updated, firstErr
}

func (t *Tracker) checkSource(name string) (bool, error) {
	dialect, err := t.svc.fed.SourceDialectName(name)
	if err != nil {
		return false, err
	}
	spec, err := xspec.Generate(name, dialect, sourceQueryer{fed: t.svc.fed, name: name})
	if err != nil {
		return false, fmt.Errorf("dataaccess: tracker: regenerate %s: %w", name, err)
	}
	data, err := spec.Marshal()
	if err != nil {
		return false, err
	}
	fp := xspec.FingerprintOf(data)
	t.mu.Lock()
	old, seen := t.known[name]
	t.known[name] = trackedSpec{fp: fp, spec: spec}
	t.mu.Unlock()
	if seen && fp.Equal(old.fp) {
		return false, nil
	}
	if !seen {
		// First observation: baseline only, no reload.
		return false, nil
	}
	if err := t.svc.fed.ReplaceSpec(name, spec); err != nil {
		return false, err
	}
	// Evict only the cached results that read what actually changed: the
	// old and new specs are diffed table by table, so entries on the
	// source's untouched tables keep serving hits. (Earlier versions
	// evicted the whole source, cold-starting every table's entries on
	// any change.) A shift in the inferred relationship set can reshape
	// join plans across the source, so that falls back to whole-source
	// eviction.
	diff := xspec.DiffSpecs(old.spec, spec)
	if diff.RelationshipsChanged || old.spec == nil {
		t.svc.InvalidateSource(name)
	} else {
		for _, table := range diff.Tables {
			t.svc.InvalidateTable(name, table)
		}
	}
	t.updates.Add(1)
	return true, nil
}

// sourceQueryer adapts a federation member to the xspec.Queryer interface.
type sourceQueryer struct {
	fed  *unity.Federation
	name string
}

// Query implements xspec.Queryer against one federation source.
func (q sourceQueryer) Query(sql string, params ...sqlengine.Value) (*sqlengine.ResultSet, error) {
	if len(params) > 0 {
		return nil, fmt.Errorf("dataaccess: introspection queries take no parameters")
	}
	return q.fed.QuerySource(q.name, sql)
}
