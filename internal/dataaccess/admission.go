package dataaccess

// Admission control and per-tenant QoS at the service edge: a weighted
// max-in-flight gate with a bounded queue-with-deadline, plus per-session
// quotas on open cursors and streamed bytes. One greedy tenant can no
// longer saturate the backend pool or the cursor registry: past the
// in-flight cap, arriving queries queue (FIFO within their tenant's
// weight class, stride-scheduled across classes so a weight-2 tenant
// drains twice as fast as a weight-1 tenant) until a slot frees, their
// deadline expires, or the queue itself is full — the last two shed the
// request with clarens.FaultOverloaded before any planning or backend
// work happens. Everything here runs on the caller's goroutine: the gate
// spawns nothing, and a shed request never touches a backend.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/sqlengine"
)

// Admission-queue defaults (Config.AdmissionQueue / AdmissionTimeout
// select them with a zero value; negative values disable the feature).
const (
	// defaultAdmissionQueueFactor sizes the wait queue as a multiple of
	// MaxInFlight when Config.AdmissionQueue is zero.
	defaultAdmissionQueueFactor = 2
	// defaultAdmissionTimeout bounds a queued wait when
	// Config.AdmissionTimeout is zero: long enough to absorb a burst,
	// short enough that a saturated server sheds instead of stacking
	// waiters behind work it will never reach.
	defaultAdmissionTimeout = 5 * time.Second
)

// Session-quota table hygiene: entries for sessions that went idle are
// dropped by an amortized sweep on the request path (no janitor
// goroutine), mirroring the clarens session sweep.
const (
	sessionQuotaTTL      = time.Hour // matches the clarens login TTL
	sessionSweepEvery    = 64
	sessionSweepInterval = time.Minute
	anonymousTenant      = "(anonymous)"
)

// ---- caller identity ----

type callerKey struct{}

// CallerInfo identifies the principal behind a query for admission
// accounting: the tenant (authenticated user) for weight classes and
// per-tenant counters, and the session token for per-session quotas.
// Both may be empty (open servers, embedded callers).
type CallerInfo struct {
	Tenant  string
	Session string
}

// WithCaller attaches the calling principal to ctx. The RPC method layer
// applies it from the clarens CallContext; embedded callers may apply it
// directly to opt into per-session quotas.
func WithCaller(ctx context.Context, tenant, session string) context.Context {
	return context.WithValue(ctx, callerKey{}, CallerInfo{Tenant: tenant, Session: session})
}

// callerFrom returns the caller attached to ctx, or the zero CallerInfo.
// Context values survive both qcache's singleflight detachment and the
// cursor path's context.WithoutCancel, so the identity established at
// the RPC edge is visible wherever admission or quotas are checked.
func callerFrom(ctx context.Context) CallerInfo {
	ci, _ := ctx.Value(callerKey{}).(CallerInfo)
	return ci
}

// tenantOf maps a caller to its accounting tenant.
func (ci CallerInfo) tenantOf() string {
	if ci.Tenant == "" {
		return anonymousTenant
	}
	return ci.Tenant
}

// ---- errors ----

// errShed builds the load-shed fault. The code rides the error chain, so
// the RPC edge faults with it verbatim and clarens.IsOverloaded
// recognizes it even through "forward to <url>:" wrapping.
func errShed(format string, args ...interface{}) error {
	return &clarens.Fault{Code: clarens.FaultOverloaded, Message: fmt.Sprintf(format, args...)}
}

// ---- admission outcomes (qtrack / explain / loadstats vocabulary) ----

const (
	admitNone int32 = iota // gate disabled or not consulted
	admitImmediate
	admitQueued
)

// ---- the weighted gate ----

// waiter is one queued acquire. grant is closed by the releasing
// goroutine with a.mu held; granted/abandoned resolve the race between a
// grant and the waiter giving up (deadline, cancellation) — whichever
// transition happens first under the mutex wins, and a grant that lands
// on an abandoned waiter is passed straight to the next one so the slot
// cannot leak.
type waiter struct {
	grant     chan struct{}
	granted   bool
	abandoned bool
}

// weightClass is one tenant's FIFO of waiters plus its stride-scheduling
// state: pass advances by 1/weight per grant, and the scheduler always
// grants the nonempty class with the minimum pass, so over time each
// backlogged tenant drains in proportion to its weight.
type weightClass struct {
	tenant  string
	weight  int
	pass    float64
	waiters []*waiter
}

// admitter is the max-in-flight gate. All state is guarded by mu; the
// blocking wait happens outside the lock on the waiter's grant channel.
type admitter struct {
	capacity int
	queueCap int
	timeout  time.Duration
	weights  map[string]int
	obs      *serviceObsv

	mu       sync.Mutex
	inflight int
	queued   int
	classes  map[string]*weightClass
	// vpass is the pass of the most recently granted class: a class going
	// from empty to backlogged starts here, so it competes fairly with
	// classes that have been draining (it cannot claim credit for time it
	// had nothing queued).
	vpass   float64
	tenants map[string]*tenantStats
}

// tenantStats accumulates one tenant's admission history (a.mu guards).
type tenantStats struct {
	weight            int
	admittedImmediate int64
	admittedQueued    int64
	shed              int64
	cancelled         int64
	queuedNs          int64
}

func newAdmitter(cfg Config, obs *serviceObsv) *admitter {
	if cfg.MaxInFlight <= 0 {
		return nil
	}
	queueCap := cfg.AdmissionQueue
	if queueCap == 0 {
		queueCap = defaultAdmissionQueueFactor * cfg.MaxInFlight
	}
	if queueCap < 0 {
		queueCap = 0
	}
	timeout := cfg.AdmissionTimeout
	if timeout == 0 {
		timeout = defaultAdmissionTimeout
	}
	if timeout < 0 {
		timeout = 0 // bounded only by the caller's context
	}
	return &admitter{
		capacity: cfg.MaxInFlight,
		queueCap: queueCap,
		timeout:  timeout,
		weights:  cfg.TenantWeights,
		obs:      obs,
		classes:  make(map[string]*weightClass),
		tenants:  make(map[string]*tenantStats),
	}
}

func (a *admitter) weightOf(tenant string) int {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// statsLocked returns the tenant's accumulator, creating it on first use.
func (a *admitter) statsLocked(tenant string) *tenantStats {
	ts, ok := a.tenants[tenant]
	if !ok {
		ts = &tenantStats{weight: a.weightOf(tenant)}
		a.tenants[tenant] = ts
	}
	return ts
}

// ticket is one admitted query's hold on an in-flight slot. release is
// idempotent: the streaming paths release from both the iterator's
// terminal Next and its Close, whichever the consumer reaches first.
type ticket struct {
	a        *admitter
	tenant   string
	outcome  int32
	waited   time.Duration
	released atomic.Bool
}

func (tk *ticket) release() {
	if tk == nil || !tk.released.CompareAndSwap(false, true) {
		return
	}
	tk.a.releaseSlot()
}

// acquire takes an in-flight slot for the caller, queueing (FIFO within
// the tenant's weight class) when the gate is saturated. It returns a
// FaultOverloaded error when the queue is full or the queue deadline
// expires, and the caller's own context error when that cancels first —
// the distinction clients need between "back off and retry" and "you
// gave up". A nil admitter admits everything with a nil ticket.
func (a *admitter) acquire(ctx context.Context, tenant string) (*ticket, error) {
	if a == nil {
		return nil, nil
	}
	a.mu.Lock()
	ts := a.statsLocked(tenant)
	if a.inflight < a.capacity && a.queued == 0 {
		a.inflight++
		ts.admittedImmediate++
		a.mu.Unlock()
		a.obs.admImmediate.Inc()
		return &ticket{a: a, tenant: tenant, outcome: admitImmediate}, nil
	}
	if a.queued >= a.queueCap {
		ts.shed++
		a.mu.Unlock()
		a.obs.admShedFull.Inc()
		return nil, errShed("dataaccess: overloaded: %d queries in flight and %d queued (admission queue full)",
			a.capacity, a.queueCap)
	}
	w := &waiter{grant: make(chan struct{})}
	cls, ok := a.classes[tenant]
	if !ok {
		cls = &weightClass{tenant: tenant, weight: a.weightOf(tenant), pass: a.vpass}
		a.classes[tenant] = cls
	}
	cls.waiters = append(cls.waiters, w)
	a.queued++
	a.mu.Unlock()

	start := time.Now()
	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		timer := time.NewTimer(a.timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case <-w.grant:
		waited := time.Since(start)
		a.mu.Lock()
		a.statsLocked(tenant).admittedQueued++
		a.statsLocked(tenant).queuedNs += int64(waited)
		a.mu.Unlock()
		a.obs.admQueued.Inc()
		a.obs.admWait.ObserveDuration(waited)
		return &ticket{a: a, tenant: tenant, outcome: admitQueued, waited: waited}, nil
	case <-ctx.Done():
		a.abandon(w, tenant, false)
		a.obs.admCancelled.Inc()
		return nil, ctx.Err()
	case <-timeoutC:
		a.abandon(w, tenant, true)
		a.obs.admShedTimeout.Inc()
		return nil, errShed("dataaccess: overloaded: no slot freed within %v (queue deadline)", a.timeout)
	}
}

// abandon resolves a waiter that stopped waiting. If the grant already
// landed (the race), the held slot is passed to the next waiter or freed
// so it cannot leak; otherwise the waiter is marked dead for the
// scheduler to skip.
func (a *admitter) abandon(w *waiter, tenant string, timedOut bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.statsLocked(tenant)
	if timedOut {
		ts.shed++
	} else {
		ts.cancelled++
	}
	if w.granted {
		a.releaseSlotLocked()
		return
	}
	w.abandoned = true
	a.queued--
}

// releaseSlot frees one in-flight slot, preferring to hand it to a
// queued waiter (stride order) over decrementing the count.
func (a *admitter) releaseSlot() {
	a.mu.Lock()
	a.releaseSlotLocked()
	a.mu.Unlock()
}

func (a *admitter) releaseSlotLocked() {
	for {
		cls := a.minClassLocked()
		if cls == nil {
			a.inflight--
			return
		}
		w := cls.waiters[0]
		cls.waiters = cls.waiters[1:]
		if len(cls.waiters) == 0 {
			delete(a.classes, cls.tenant)
		}
		if w.abandoned {
			continue // its queued count was already decremented
		}
		w.granted = true
		cls.pass += 1 / float64(cls.weight)
		a.vpass = cls.pass
		a.queued--
		close(w.grant)
		return
	}
}

// minClassLocked picks the backlogged class with the lowest pass.
func (a *admitter) minClassLocked() *weightClass {
	var min *weightClass
	for _, cls := range a.classes {
		if len(cls.waiters) == 0 {
			continue
		}
		if min == nil || cls.pass < min.pass ||
			(cls.pass == min.pass && cls.tenant < min.tenant) {
			min = cls
		}
	}
	return min
}

// probe reports what would happen to a query arriving now — the
// explain-time admission outcome ("admit", "queue", "would-shed").
func (a *admitter) probe() string {
	if a == nil {
		return "admit"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case a.inflight < a.capacity && a.queued == 0:
		return "admit"
	case a.queued < a.queueCap:
		return "queue"
	default:
		return "would-shed"
	}
}

// ---- per-session quotas ----

// sessionState tracks one session's resource burn. Guarded by
// sessionTable.mu.
type sessionState struct {
	tenant   string
	cursors  int
	bytes    int64
	lastSeen time.Time
}

// sessionTable enforces per-session quotas on open cursors and streamed
// bytes. Sessions are identified by the clarens session token; calls
// without one (open servers, embedded callers that did not opt in) are
// not quota-tracked. Idle entries are dropped by an amortized sweep on
// the request path — no janitor goroutine — but never while they still
// hold cursors.
type sessionTable struct {
	maxCursors int
	maxBytes   int64
	obs        *serviceObsv

	mu        sync.Mutex
	sessions  map[string]*sessionState
	denied    map[string]*quotaDenials
	ops       int
	lastSweep time.Time
}

// quotaDenials accumulates one tenant's quota-trip history. Unlike
// session state it survives EndSession — denials are operator-facing
// evidence, not budget. Guarded by sessionTable.mu.
type quotaDenials struct {
	cursors int64
	bytes   int64
}

func newSessionTable(cfg Config, obs *serviceObsv) *sessionTable {
	if cfg.SessionMaxCursors <= 0 && cfg.SessionMaxBytes <= 0 {
		return nil
	}
	return &sessionTable{
		maxCursors: cfg.SessionMaxCursors,
		maxBytes:   cfg.SessionMaxBytes,
		obs:        obs,
		sessions:   make(map[string]*sessionState),
		denied:     make(map[string]*quotaDenials),
		lastSweep:  time.Now(),
	}
}

// deniedLocked returns the tenant's denial counters, creating on first
// trip.
func (st *sessionTable) deniedLocked(tenant string) *quotaDenials {
	qd, ok := st.denied[tenant]
	if !ok {
		qd = &quotaDenials{}
		st.denied[tenant] = qd
	}
	return qd
}

// stateLocked returns the session's entry, creating it on first use, and
// runs the amortized idle sweep.
func (st *sessionTable) stateLocked(ci CallerInfo) *sessionState {
	if st.ops++; st.ops >= sessionSweepEvery && time.Since(st.lastSweep) >= sessionSweepInterval {
		st.sweepLocked(time.Now())
	}
	ss, ok := st.sessions[ci.Session]
	if !ok {
		ss = &sessionState{tenant: ci.tenantOf()}
		st.sessions[ci.Session] = ss
	}
	ss.lastSeen = time.Now()
	return ss
}

// sweepLocked drops idle, cursor-free sessions (their byte budget resets
// with them — an expired login starts fresh, exactly like clarens makes
// it log in again).
func (st *sessionTable) sweepLocked(now time.Time) {
	for token, ss := range st.sessions {
		if ss.cursors == 0 && now.Sub(ss.lastSeen) > sessionQuotaTTL {
			delete(st.sessions, token)
		}
	}
	st.ops = 0
	st.lastSweep = now
}

// reserveCursor charges one open cursor to the session, refusing with a
// FaultOverloaded quota fault at the cap. A nil table (quotas off) or an
// empty session admits freely.
func (st *sessionTable) reserveCursor(ci CallerInfo) error {
	if st == nil || ci.Session == "" || st.maxCursors <= 0 {
		return nil
	}
	st.mu.Lock()
	ss := st.stateLocked(ci)
	if ss.cursors >= st.maxCursors {
		st.deniedLocked(ci.tenantOf()).cursors++
		st.mu.Unlock()
		st.obs.quotaCursors.Inc()
		return errShed("dataaccess: session cursor quota exhausted (%d open; close or drain a cursor first)",
			st.maxCursors)
	}
	ss.cursors++
	st.mu.Unlock()
	return nil
}

// releaseCursor returns a cursor reservation (cursor closed, reaped, or
// its open failed after the reserve).
func (st *sessionTable) releaseCursor(session string) {
	if st == nil || session == "" {
		return
	}
	st.mu.Lock()
	if ss, ok := st.sessions[session]; ok && ss.cursors > 0 {
		ss.cursors--
	}
	st.mu.Unlock()
}

// chargeBytes charges streamed delivery against the session's byte
// budget, tripping with a FaultOverloaded quota fault once the lifetime
// total passes the cap. Rows are charged as they are delivered, so the
// trip lands mid-stream on whichever row crosses the budget — that row
// is withheld and the stream ends with the quota fault.
func (st *sessionTable) chargeBytes(ci CallerInfo, n int64) error {
	if st == nil || ci.Session == "" || st.maxBytes <= 0 {
		return nil
	}
	st.mu.Lock()
	ss := st.stateLocked(ci)
	ss.bytes += n
	over := ss.bytes > st.maxBytes
	if over {
		st.deniedLocked(ci.tenantOf()).bytes++
	}
	st.mu.Unlock()
	if over {
		st.obs.quotaBytes.Inc()
		return errShed("dataaccess: session streamed-byte quota exhausted (%d bytes; ends with the session)",
			st.maxBytes)
	}
	return nil
}

// endSession forgets a session's quota state (logout / session expiry):
// its cursor reservations and byte budget reset.
func (st *sessionTable) endSession(session string) {
	if st == nil || session == "" {
		return
	}
	st.mu.Lock()
	delete(st.sessions, session)
	st.mu.Unlock()
}

// ---- service surfaces ----

// EndSession resets the session's quota accounting (open-cursor
// reservations, streamed-byte budget). Call it when a login ends; idle
// sessions are also swept automatically after an hour.
func (s *Service) EndSession(session string) {
	s.sessions.endSession(session)
}

// AdmissionEnabled reports whether the in-flight gate is configured.
func (s *Service) AdmissionEnabled() bool { return s.admit != nil }

// TenantLoad is one tenant's admission and quota history.
type TenantLoad struct {
	Tenant string
	Weight int
	// AdmittedImmediate / AdmittedQueued / Shed / Cancelled partition
	// this tenant's gate outcomes; QueuedMs is total time spent queued.
	AdmittedImmediate int64
	AdmittedQueued    int64
	Shed              int64
	Cancelled         int64
	QueuedMs          float64
	// QuotaDeniedCursors / QuotaDeniedBytes count per-session quota trips.
	QuotaDeniedCursors int64
	QuotaDeniedBytes   int64
	// Sessions / OpenCursors / StreamedBytes aggregate the tenant's live
	// quota-tracked sessions.
	Sessions      int
	OpenCursors   int
	StreamedBytes int64
}

// LoadStats is the operational snapshot behind system.loadstats.
type LoadStats struct {
	Enabled     bool
	MaxInFlight int
	QueueCap    int
	InFlight    int
	Queued      int
	// Lifetime gate totals across tenants.
	AdmittedImmediate int64
	AdmittedQueued    int64
	Shed              int64
	Cancelled         int64
	// Session-quota configuration (0 = unlimited).
	SessionMaxCursors int
	SessionMaxBytes   int64
	Tenants           []TenantLoad
}

// LoadStats snapshots the admission gate and per-tenant counters.
func (s *Service) LoadStats() LoadStats {
	ls := LoadStats{
		Enabled:           s.admit != nil,
		SessionMaxCursors: s.cfg.SessionMaxCursors,
		SessionMaxBytes:   s.cfg.SessionMaxBytes,
	}
	byTenant := make(map[string]*TenantLoad)
	tenant := func(name string) *TenantLoad {
		tl, ok := byTenant[name]
		if !ok {
			tl = &TenantLoad{Tenant: name, Weight: 1}
			if s.admit != nil {
				tl.Weight = s.admit.weightOf(name)
			}
			byTenant[name] = tl
		}
		return tl
	}
	if a := s.admit; a != nil {
		a.mu.Lock()
		ls.MaxInFlight = a.capacity
		ls.QueueCap = a.queueCap
		ls.InFlight = a.inflight
		ls.Queued = a.queued
		for name, ts := range a.tenants {
			tl := tenant(name)
			tl.Weight = ts.weight
			tl.AdmittedImmediate = ts.admittedImmediate
			tl.AdmittedQueued = ts.admittedQueued
			tl.Shed = ts.shed
			tl.Cancelled = ts.cancelled
			tl.QueuedMs = float64(ts.queuedNs) / float64(time.Millisecond)
			ls.AdmittedImmediate += ts.admittedImmediate
			ls.AdmittedQueued += ts.admittedQueued
			ls.Shed += ts.shed
			ls.Cancelled += ts.cancelled
		}
		a.mu.Unlock()
	}
	if st := s.sessions; st != nil {
		st.mu.Lock()
		for _, ss := range st.sessions {
			tl := tenant(ss.tenant)
			tl.Sessions++
			tl.OpenCursors += ss.cursors
			tl.StreamedBytes += ss.bytes
		}
		for name, qd := range st.denied {
			tl := tenant(name)
			tl.QuotaDeniedCursors = qd.cursors
			tl.QuotaDeniedBytes = qd.bytes
		}
		st.mu.Unlock()
	}
	for _, tl := range byTenant {
		ls.Tenants = append(ls.Tenants, *tl)
	}
	sort.Slice(ls.Tenants, func(i, j int) bool { return ls.Tenants[i].Tenant < ls.Tenants[j].Tenant })
	return ls
}

// ---- streaming integration ----

// admitIter pins an in-flight slot to a live stream: the slot frees when
// the consumer drains the stream, hits an error, or closes it — the
// moment the backend work is over, not when the opening call returns.
type admitIter struct {
	inner sqlengine.RowIter
	tk    *ticket
}

func (it *admitIter) Columns() []string { return it.inner.Columns() }

func (it *admitIter) Next() (sqlengine.Row, error) {
	row, err := it.inner.Next()
	if err != nil {
		it.tk.release()
	}
	return row, err
}

func (it *admitIter) Close() error {
	err := it.inner.Close()
	it.tk.release()
	return err
}

// quotaIter charges each delivered row against the session's streamed-
// byte budget; a trip mid-stream surfaces as a row error, which every
// consumer path (ForEach, cursor fetch, relay) already treats as a
// terminal close-and-release.
type quotaIter struct {
	inner sqlengine.RowIter
	st    *sessionTable
	ci    CallerInfo
}

func (it *quotaIter) Columns() []string { return it.inner.Columns() }

func (it *quotaIter) Next() (sqlengine.Row, error) {
	row, err := it.inner.Next()
	if err != nil {
		return row, err
	}
	if qerr := it.st.chargeBytes(it.ci, rowBytes(row)); qerr != nil {
		return nil, qerr
	}
	return row, nil
}

func (it *quotaIter) Close() error { return it.inner.Close() }

// gateStream applies the admission ticket and the session byte quota to
// a routed stream.
func (s *Service) gateStream(sr *StreamResult, tk *ticket, ci CallerInfo) *StreamResult {
	if tk != nil {
		sr.iter = &admitIter{inner: sr.iter, tk: tk}
	}
	if s.sessions != nil && ci.Session != "" && s.sessions.maxBytes > 0 {
		sr.iter = &quotaIter{inner: sr.iter, st: s.sessions, ci: ci}
	}
	return sr
}
