package dataaccess

// Tests for the cursor-to-cursor relay: federated streams must pull pages
// off the peer lazily, fall back to plain XML (and to materialized
// forwards) for peers that lack the faster protocol layers, survive a
// peer dying mid-stream with a loud error, and release the remote cursor
// — on both the natural end of the stream and an early local close —
// without stranding goroutines on either server.

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/leaktest"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqldriver"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// addEngineMart registers a live engine as a mart on s (local:// DSN).
func addEngineMart(t *testing.T, s *Service, e *sqlengine.Engine) {
	t.Helper()
	sqldriver.RegisterEngine(e)
	t.Cleanup(func() { sqldriver.UnregisterEngine(e.Name()) })
	spec, err := xspec.Generate(e.Name(), e.Dialect().Name, e)
	if err != nil {
		t.Fatal(err)
	}
	addMart(t, s, e.Name(), spec, e.Dialect().DriverName)
}

// relayPair is a two-server federation testbed: host serves a mart, fwd
// hosts nothing and reaches the tables through the RLS.
type relayPair struct {
	catalog *rls.Server
	host    *Service
	hostSrv *clarens.Server
	fwd     *Service
	fwdSrv  *clarens.Server

	closeOnce sync.Once
}

func (p *relayPair) close() {
	p.closeOnce.Do(func() {
		p.fwd.Close()
		p.fwdSrv.Close()
		p.host.Close()
		p.hostSrv.Close()
		p.catalog.Close()
	})
}

// newRelayPair builds the testbed; mart/table name the engine and its one
// table (engine registration is global, so names must be test-unique).
func newRelayPair(t *testing.T, hostCfg, fwdCfg Config, mart, table string, rows int) *relayPair {
	t.Helper()
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cfg Config) (*Service, *clarens.Server) {
		cfg.RLS = rls.NewClient(rlsURL)
		svc := New(cfg)
		srv := clarens.NewServer(true)
		svc.RegisterMethods(srv)
		url, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc.SetURL(url)
		return svc, srv
	}
	host, hostSrv := mk(hostCfg)
	fwd, fwdSrv := mk(fwdCfg)
	_, spec := mkMart(t, mart, sqlengine.DialectMySQL, table, rows)
	addMart(t, host, mart, spec, "gridsql-mysql")
	return &relayPair{catalog: catalog, host: host, hostSrv: hostSrv, fwd: fwd, fwdSrv: fwdSrv}
}

// drainStream collects a stream fully, closing it.
func drainStream(t *testing.T, sr *StreamResult) *sqlengine.ResultSet {
	t.Helper()
	rs := &sqlengine.ResultSet{Columns: sr.Columns()}
	if err := sr.ForEach(func(row sqlengine.Row) error {
		rs.Rows = append(rs.Rows, row)
		return nil
	}); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rs
}

// TestRelayStreamsRemoteScan proves the headline behaviour: a streamed
// query whose table lives on another server rides a remote cursor page by
// page, produces exactly the rows a materialized forward would, and
// releases the remote cursor when the stream drains.
func TestRelayStreamsRemoteScan(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	const n = 1500
	p := newRelayPair(t, Config{Name: "relay-host"}, Config{Name: "relay-fwd", RelayFetchSize: 128}, "mart_relay_scan", "events", n)
	defer p.close()

	sr, err := p.fwd.QueryStreamContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Route != RouteRemote || sr.Servers != 2 {
		t.Fatalf("route=%s servers=%d, want remote/2", sr.Route, sr.Servers)
	}
	got := drainStream(t, sr)
	if len(got.Rows) != n {
		t.Fatalf("relayed %d rows, want %d", len(got.Rows), n)
	}

	// Byte-identical to the materialized forward of the same query.
	qr, err := p.fwd.QueryContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	want := string(EncodeRowsBinary(qr.Rows))
	if string(EncodeRowsBinary(got.Rows)) != want {
		t.Fatal("relayed rows differ from the materialized forward")
	}

	st := p.fwd.CursorStats()
	if st.RelayOpens != 1 {
		t.Fatalf("relay opens = %d, want 1", st.RelayOpens)
	}
	if wantFetches := int64(n/128 + 1); st.RelayFetches < wantFetches {
		t.Fatalf("relay fetches = %d, want >= %d (pages of 128)", st.RelayFetches, wantFetches)
	}
	if st.RelayRows != n {
		t.Fatalf("relay rows = %d, want %d", st.RelayRows, n)
	}
	// The drained relay closed the remote cursor without waiting for TTL.
	waitFor(t, 2*time.Second, func() bool { return p.host.CursorCount() == 0 })

	p.close()
	checkLeaks()
}

// TestRelayPlainXMLPeer proves the first fallback tier: a peer that does
// not speak the binary row codec (system.cursor.fetchb unregistered) is
// relayed over plain system.cursor.fetch, transparently.
func TestRelayPlainXMLPeer(t *testing.T) {
	const n = 300
	p := newRelayPair(t, Config{Name: "plain-host", DisableBinRows: true}, Config{Name: "plain-fwd", RelayFetchSize: 64}, "mart_relay_plain", "events", n)
	defer p.close()

	sr, err := p.fwd.QueryStreamContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, sr)
	if len(got.Rows) != n {
		t.Fatalf("relayed %d rows, want %d", len(got.Rows), n)
	}
	st := p.fwd.CursorStats()
	if st.RelayOpens != 1 || st.RelayRows != n {
		t.Fatalf("relay counters opens=%d rows=%d, want 1/%d", st.RelayOpens, st.RelayRows, n)
	}
	// The capability probe resolved the downgrade before the first fetch;
	// no mid-stream fallback was needed.
	if st.RelayFallbacks != 0 {
		t.Fatalf("relay fallbacks = %d, want 0 (probe should pre-empt)", st.RelayFallbacks)
	}
	waitFor(t, 2*time.Second, func() bool { return p.host.CursorCount() == 0 })
}

// TestRelayPeerWithoutCursorProtocol proves the second fallback tier: a
// peer that predates the cursor methods entirely (only dataaccess.query)
// still answers streamed queries — through a materialized forward that
// then streams from the forwarder's memory.
func TestRelayPeerWithoutCursorProtocol(t *testing.T) {
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer catalog.Close()

	// A hand-built "legacy" peer: one query method, no cursors, no
	// capabilities, backed by a real local service.
	legacy := New(Config{Name: "legacy-core"})
	defer legacy.Close()
	const n = 120
	_, spec := mkMart(t, "mart_relay_legacy", sqlengine.DialectMySQL, "events", n)
	addMart(t, legacy, "mart_relay_legacy", spec, "gridsql-mysql")
	legacySrv := clarens.NewServer(true)
	legacySrv.Register("dataaccess.query", func(ctx context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		sqlText, _ := args[0].(string)
		qr, err := legacy.QueryContext(ctx, sqlText)
		if err != nil {
			return nil, err
		}
		return EncodeResult(qr.ResultSet), nil
	})
	legacyURL, err := legacySrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer legacySrv.Close()
	if err := rls.NewClient(rlsURL).Publish(legacyURL, []string{"events"}); err != nil {
		t.Fatal(err)
	}

	fwd := New(Config{Name: "legacy-fwd", RLS: rls.NewClient(rlsURL)})
	defer fwd.Close()
	sr, err := fwd.QueryStreamContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Route != RouteRemote {
		t.Fatalf("route = %s, want remote", sr.Route)
	}
	got := drainStream(t, sr)
	if len(got.Rows) != n {
		t.Fatalf("streamed %d rows, want %d", len(got.Rows), n)
	}
	if st := fwd.CursorStats(); st.RelayOpens != 0 {
		t.Fatalf("relay opens = %d, want 0 (peer has no cursor methods)", st.RelayOpens)
	}
}

// TestRelayMidStreamPeerDeath proves a dying peer surfaces as a loud,
// prompt error — never silent truncation — and that closing the broken
// stream does not hang or strand goroutines.
func TestRelayMidStreamPeerDeath(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	const n = 1000
	p := newRelayPair(t, Config{Name: "death-host"}, Config{Name: "death-fwd", RelayFetchSize: 64}, "mart_relay_death", "events", n)
	defer p.close()

	sr, err := p.fwd.QueryStreamContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	// Consume the first page, then kill the peer's front end.
	for i := 0; i < 64; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	p.hostSrv.Close()
	var ferr error
	for i := 0; i < n; i++ {
		if _, ferr = sr.Next(); ferr != nil {
			break
		}
	}
	if ferr == nil || ferr == io.EOF {
		t.Fatalf("Next after peer death = %v, want a transport error", ferr)
	}
	// The error is terminal and sticky.
	if _, err := sr.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next after terminal error = %v, want the error again", err)
	}
	done := make(chan struct{})
	go func() { sr.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung against a dead peer")
	}

	p.close()
	checkLeaks()
}

// TestRelayCloseReleasesRemoteCursor proves an early local close tears
// down the whole chain: the peer's cursor disappears (producing query
// cancelled) well before any TTL, and no goroutines are stranded.
func TestRelayCloseReleasesRemoteCursor(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	const n = 5000
	p := newRelayPair(t, Config{Name: "close-host"}, Config{Name: "close-fwd", RelayFetchSize: 32}, "mart_relay_close", "events", n)
	defer p.close()

	sr, err := p.fwd.QueryStreamContext(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	if p.host.CursorCount() != 1 {
		t.Fatalf("host cursors = %d, want 1 mid-stream", p.host.CursorCount())
	}
	if err := sr.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return p.host.CursorCount() == 0 })

	p.close()
	checkLeaks()
}

// TestRelayChainedCursors proves the bound composes across hops: a client
// paging a cursor on the forwarder drives a relay that pages a cursor on
// the host, and closing the client's cursor releases both.
func TestRelayChainedCursors(t *testing.T) {
	const n = 800
	p := newRelayPair(t, Config{Name: "chain-host"}, Config{Name: "chain-fwd", RelayFetchSize: 64}, "mart_relay_chain", "events", n)
	defer p.close()

	info, err := p.fwd.OpenCursor(context.Background(), "SELECT event_id, run, e_tot FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if info.Route != RouteRemote {
		t.Fatalf("route = %s, want remote", info.Route)
	}
	rows, done, err := p.fwd.FetchCursor(info.ID, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 || done {
		t.Fatalf("first page: %d rows done=%v, want 50/false", len(rows), done)
	}
	if p.host.CursorCount() != 1 {
		t.Fatalf("host cursors = %d, want 1 while the chain is live", p.host.CursorCount())
	}
	if !p.fwd.CloseCursor(info.ID) {
		t.Fatal("close failed")
	}
	waitFor(t, 2*time.Second, func() bool { return p.host.CursorCount() == 0 })
	waitFor(t, 2*time.Second, func() bool { return p.fwd.CursorCount() == 0 })
}

// TestRelaySourceBudget proves the per-source budget reaches the relay
// path: a remote source that blocks forever is cut off after the budget
// instead of consuming the caller's whole allowance.
func TestRelaySourceBudget(t *testing.T) {
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer catalog.Close()

	host := New(Config{Name: "budget-host", RLS: rls.NewClient(rlsURL)})
	defer host.Close()
	d, ref, spec := registerSlowSource(time.Hour)
	if err := host.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}
	hostSrv := clarens.NewServer(true)
	host.RegisterMethods(hostSrv)
	hostURL, err := hostSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hostSrv.Close()
	host.SetURL(hostURL)
	if err := rls.NewClient(rlsURL).Publish(hostURL, []string{"slow_t"}); err != nil {
		t.Fatal(err)
	}

	fwd := New(Config{Name: "budget-fwd", RLS: rls.NewClient(rlsURL), SourceBudget: 150 * time.Millisecond})
	defer fwd.Close()
	start := time.Now()
	sr, err := fwd.QueryStreamContext(context.Background(), "SELECT a FROM slow_t")
	if err == nil {
		_, err = sr.Next()
		sr.Close()
	}
	if err == nil {
		t.Fatal("stream against a stuck source succeeded, want a budget cut-off")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget cut-off took %s, want ~150ms", elapsed)
	}
	// The host's backend observed the cancellation (the cursor open's
	// producing query died with the aborted request or its own release).
	select {
	case <-d.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("remote backend never observed the cancellation")
	}
}

// TestRelayMixedDeadPeerError proves a mixed query against an
// unreachable remote peer fails with the real transport error, not a
// misleading "produced no columns" (the lazy relay open is forced before
// column inference gives up).
func TestRelayMixedDeadPeerError(t *testing.T) {
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer catalog.Close()
	// Publish a server that is not listening.
	if err := rls.NewClient(rlsURL).Publish("http://127.0.0.1:1", []string{"dead_t"}); err != nil {
		t.Fatal(err)
	}
	jc := New(Config{Name: "deadpeer", RLS: rls.NewClient(rlsURL)})
	defer jc.Close()
	_, evSpec := mkMart(t, "mart_deadpeer", sqlengine.DialectMySQL, "live_t", 5)
	addMart(t, jc, "mart_deadpeer", evSpec, "gridsql-mysql")

	_, err = jc.Query("SELECT l.event_id FROM live_t l JOIN dead_t d ON l.run = d.run")
	if err == nil {
		t.Fatal("query against a dead peer succeeded")
	}
	if strings.Contains(err.Error(), "produced no columns") {
		t.Fatalf("transport failure masked as a column error: %v", err)
	}
}

// TestRelayMixedIntegration proves the mixed path: a join between a local
// and a remote table streams the remote side through a relay into the
// integration engine and still produces the right answer.
func TestRelayMixedIntegration(t *testing.T) {
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer catalog.Close()
	mk := func(name string) (*Service, *clarens.Server) {
		svc := New(Config{Name: name, RLS: rls.NewClient(rlsURL)})
		srv := clarens.NewServer(true)
		svc.RegisterMethods(srv)
		url, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc.SetURL(url)
		return svc, srv
	}
	jc1, srv1 := mk("mixed-1")
	defer func() { jc1.Close(); srv1.Close() }()
	jc2, srv2 := mk("mixed-2")
	defer func() { jc2.Close(); srv2.Close() }()

	_, evSpec := mkMart(t, "mart_mixed_events", sqlengine.DialectMySQL, "relay_events", 40)
	addMart(t, jc1, "mart_mixed_events", evSpec, "gridsql-mysql")
	runs := sqlengine.NewEngine("mart_mixed_runs", sqlengine.DialectMySQL)
	if _, err := runs.Exec("CREATE TABLE `runsmeta` (`run` BIGINT PRIMARY KEY, `site` VARCHAR(16))"); err != nil {
		t.Fatal(err)
	}
	for i, site := range map[int]string{100: "tier1", 101: "tier2"} {
		if _, err := runs.Exec(fmt.Sprintf("INSERT INTO `runsmeta` VALUES (%d, '%s')", i, site)); err != nil {
			t.Fatal(err)
		}
	}
	addEngineMart(t, jc2, runs)

	qr, err := jc1.Query("SELECT e.event_id, r.site FROM relay_events e JOIN runsmeta r ON e.run = r.run WHERE r.site = 'tier1'")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteMixed || qr.Servers != 2 {
		t.Fatalf("route=%s servers=%d, want mixed/2", qr.Route, qr.Servers)
	}
	if len(qr.Rows) != 20 {
		t.Fatalf("join returned %d rows, want 20 (run 100 half)", len(qr.Rows))
	}
	// The remote side travelled as a relay, not a materialized forward.
	if st := jc1.CursorStats(); st.RelayOpens != 1 {
		t.Fatalf("relay opens = %d, want 1 (runsmeta fetched via relay)", st.RelayOpens)
	}
	waitFor(t, 2*time.Second, func() bool { return jc2.CursorCount() == 0 })
}
