package dataaccess

// Observability for the routing stack: every query gets an id and a
// track — per-phase timings, route class, row/byte counts — begun at the
// service edge and finished when the answer (or its stream) completes.
// The track rides in the context, so it crosses the cache's singleflight
// boundary (qcache.Do runs the computation on a detached goroutine that
// inherits the caller's context values) and is visible to every routing
// helper without threading a parameter through the stack; its mutable
// fields are atomics because an abandoned singleflight leader keeps
// writing after the edge has read.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"

	"gridrdb/internal/obsv"
	"gridrdb/internal/qcache"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/unity"
)

// Route classes for the latency histograms and per-route counters: the
// cache hit, the two local modules (with unity split by plan shape), the
// whole-query forward/relay, and the mixed integration.
const (
	classCache = iota
	classRAL
	classUnityPush
	classUnityDecomp
	classRemote
	classMixed
	classUnknown // defensive: a successful query that set no class
	nClasses
)

var classNames = [nClasses]string{
	"cache", "pool-ral", "unity-pushdown", "unity-decomposed", "remote", "mixed", "unknown",
}

// defaultSlowLogSize bounds the slow-query ring when Config.SlowQueryLogSize
// is zero.
const defaultSlowLogSize = 64

// serviceObsv is the per-service observability state: the metric
// registry (always live, so /metrics and system.metrics work even with
// per-query tracking disabled), the structured logger, and the
// slow-query ring.
type serviceObsv struct {
	// enabled gates the per-query hot path (tracks, histograms, phase
	// timing, slow capture); Config.DisableObsv turns it off for the
	// no-op baseline the obsv benchmark compares against.
	enabled bool
	reg     *obsv.Registry
	logger  *slog.Logger
	slow    *obsv.SlowLog
	// slowThreshold admits a query to the slow log (0 = capture off).
	slowThreshold time.Duration

	queries  [nClasses]*obsv.Counter
	latency  [nClasses]*obsv.Histogram
	inflight *obsv.Gauge
	errors   *obsv.Counter
	// rowsOut counts rows delivered to consumers (streamed or
	// materialized); bytesOut counts estimated resident bytes, on the
	// streaming paths only (the materialized path would need an extra
	// pass to size its result).
	rowsOut  *obsv.Counter
	bytesOut *obsv.Counter

	// Cursor-registry and outbound-relay lifetime counters: previously
	// bare atomics on Service/cursorRegistry, now registry-owned so the
	// metrics endpoint, cursorstats and the race audit share one copy.
	cursorsOpened *obsv.Counter
	cursorFetches *obsv.Counter
	cursorRows    *obsv.Counter
	cursorsReaped *obsv.Counter

	relayOpens     *obsv.Counter
	relayFetches   *obsv.Counter
	relayRows      *obsv.Counter
	relayFallbacks *obsv.Counter

	// Admission-gate counters: how arrivals fared at the in-flight gate
	// (admitted straight away / after queueing / shed), how long queued
	// admissions waited, and per-session quota denials.
	admImmediate   *obsv.Counter
	admQueued      *obsv.Counter
	admShedFull    *obsv.Counter
	admShedTimeout *obsv.Counter
	admCancelled   *obsv.Counter
	admWait        *obsv.Histogram
	quotaCursors   *obsv.Counter
	quotaBytes     *obsv.Counter

	// Streaming-operator counters: how decomposed/mixed streamed queries
	// were served, and the spill telemetry of the buffering operators.
	streamPipelined *obsv.Counter
	streamScratch   *obsv.Counter
	spilledQueries  *obsv.Counter
	spillPartitions *obsv.Counter
	spillRuns       *obsv.Counter
	spillBytes      *obsv.Counter
	spillSeconds    *obsv.Histogram
}

// newServiceObsv builds the registry and registers every metric. s is
// captured by the scrape-time collectors only; its remaining fields may
// still be nil at registration.
func newServiceObsv(cfg Config, s *Service) *serviceObsv {
	o := &serviceObsv{
		enabled: !cfg.DisableObsv,
		reg:     obsv.NewRegistry(),
		logger:  cfg.Logger,
	}
	if o.logger == nil {
		o.logger = slog.New(slog.DiscardHandler)
	}
	if cfg.SlowQueryThreshold > 0 {
		size := cfg.SlowQueryLogSize
		if size <= 0 {
			size = defaultSlowLogSize
		}
		o.slow = obsv.NewSlowLog(size)
		o.slowThreshold = cfg.SlowQueryThreshold
	}
	r := o.reg
	for c := 0; c < nClasses; c++ {
		lb := obsv.Label{Key: "route", Value: classNames[c]}
		o.queries[c] = r.Counter("gridrdb_queries_total",
			"Completed queries by route class.", lb)
		o.latency[c] = r.Histogram("gridrdb_query_duration_seconds",
			"End-to-end query latency by route class (streamed queries: until the stream drains).", nil, lb)
	}
	o.inflight = r.Gauge("gridrdb_queries_inflight",
		"Queries currently executing or streaming.")
	o.errors = r.Counter("gridrdb_query_errors_total",
		"Queries that failed before completing.")
	o.rowsOut = r.Counter("gridrdb_rows_streamed_total",
		"Rows delivered to query consumers.")
	o.bytesOut = r.Counter("gridrdb_bytes_streamed_total",
		"Estimated resident bytes delivered on the streaming paths.")
	r.CounterFunc("gridrdb_slow_queries_total",
		"Queries that exceeded the slow-query threshold.", func() int64 {
			if o.slow == nil {
				return 0
			}
			return o.slow.Total()
		})

	o.cursorsOpened = r.Counter("gridrdb_cursors_opened_total", "Server-side cursors opened.")
	o.cursorFetches = r.Counter("gridrdb_cursor_fetches_total", "Cursor fetch calls served.")
	o.cursorRows = r.Counter("gridrdb_cursor_rows_total", "Rows delivered through cursor fetches.")
	o.cursorsReaped = r.Counter("gridrdb_cursors_reaped_total", "Idle cursors collected by the TTL reaper.")
	r.GaugeFunc("gridrdb_cursors_open", "Currently registered server-side cursors.", func() int64 {
		if s.cursors == nil {
			return 0
		}
		return int64(s.CursorCount())
	})

	o.relayOpens = r.Counter("gridrdb_relay_opens_total", "Outbound cursor relays opened on peers.")
	o.relayFetches = r.Counter("gridrdb_relay_fetches_total", "Pages pulled off remote relay cursors.")
	o.relayRows = r.Counter("gridrdb_relay_rows_total", "Rows relayed from remote cursors.")
	o.relayFallbacks = r.Counter("gridrdb_relay_fallbacks_total", "Mid-stream downgrades from binary to plain relay fetches.")

	for _, out := range []struct {
		cell  **obsv.Counter
		value string
	}{{&o.admImmediate, "immediate"}, {&o.admQueued, "queued"}} {
		*out.cell = r.Counter("gridrdb_admission_admitted_total",
			"Queries admitted through the in-flight gate, by how.", obsv.Label{Key: "outcome", Value: out.value})
	}
	for _, sh := range []struct {
		cell  **obsv.Counter
		value string
	}{{&o.admShedFull, "queue_full"}, {&o.admShedTimeout, "queue_timeout"}} {
		*sh.cell = r.Counter("gridrdb_admission_shed_total",
			"Queries shed by the admission gate, by reason.", obsv.Label{Key: "reason", Value: sh.value})
	}
	o.admCancelled = r.Counter("gridrdb_admission_cancelled_total",
		"Queued queries whose own context ended before a slot freed.")
	o.admWait = r.Histogram("gridrdb_admission_wait_seconds",
		"Queue wait of queries admitted after queueing.", nil)
	for _, q := range []struct {
		cell  **obsv.Counter
		value string
	}{{&o.quotaCursors, "cursors"}, {&o.quotaBytes, "bytes"}} {
		*q.cell = r.Counter("gridrdb_admission_quota_denials_total",
			"Per-session quota denials, by quota.", obsv.Label{Key: "quota", Value: q.value})
	}
	r.GaugeFunc("gridrdb_admission_inflight", "Queries currently holding an admission slot.", func() int64 {
		a := s.admit
		if a == nil {
			return 0
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		return int64(a.inflight)
	})
	r.GaugeFunc("gridrdb_admission_queued", "Queries currently waiting for an admission slot.", func() int64 {
		a := s.admit
		if a == nil {
			return 0
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		return int64(a.queued)
	})

	o.streamPipelined = r.Counter("gridrdb_stream_pipelined_total",
		"Streamed decomposed/mixed queries served by the pipelined operators.")
	o.streamScratch = r.Counter("gridrdb_stream_scratch_total",
		"Streamed decomposed/mixed queries that fell back to scratch-engine materialization.")
	o.spilledQueries = r.Counter("gridrdb_spilled_queries_total",
		"Pipelined queries whose buffering operators spilled to disk.")
	o.spillPartitions = r.Counter("gridrdb_spill_partitions_total",
		"Partition files written by Grace hash-join builds.")
	o.spillRuns = r.Counter("gridrdb_spill_runs_total",
		"Sorted run files written by external sorts.")
	o.spillBytes = r.Counter("gridrdb_spill_bytes_total",
		"Bytes written to operator spill files.")
	o.spillSeconds = r.Histogram("gridrdb_spill_seconds",
		"Per-query time spent writing and reading operator spill files.", nil)

	// Scrape-time views over pre-existing synchronized stats: the cache,
	// the routing counters and the federation keep their own atomics,
	// and the registry reads them when scraped.
	cacheCounter := func(name, help string, get func(st qcache.Stats) int64) {
		r.CounterFunc(name, help, func() int64 { return get(s.CacheStats()) })
	}
	cacheCounter("gridrdb_cache_hits_total", "Query-cache hits.", func(st qcache.Stats) int64 { return st.Hits })
	cacheCounter("gridrdb_cache_misses_total", "Query-cache misses.", func(st qcache.Stats) int64 { return st.Misses })
	cacheCounter("gridrdb_cache_evictions_total", "Query-cache LRU evictions.", func(st qcache.Stats) int64 { return st.Evictions })
	cacheCounter("gridrdb_cache_expirations_total", "Query-cache TTL expirations.", func(st qcache.Stats) int64 { return st.Expirations })
	cacheCounter("gridrdb_cache_invalidations_total", "Query-cache dependency invalidations.", func(st qcache.Stats) int64 { return st.Invalidations })
	cacheCounter("gridrdb_cache_coalesced_total", "Queries coalesced onto an in-flight computation.", func(st qcache.Stats) int64 { return st.Coalesced })
	cacheCounter("gridrdb_cache_rejected_total", "Results refused cache admission.", func(st qcache.Stats) int64 { return st.Rejected })
	r.GaugeFunc("gridrdb_cache_entries", "Resident query-cache entries.", func() int64 { return int64(s.CacheStats().Entries) })
	r.GaugeFunc("gridrdb_cache_bytes", "Estimated resident query-cache bytes.", func() int64 { return s.CacheStats().Bytes })

	r.CounterFunc("gridrdb_rls_lookups_total", "RLS table lookups issued.", func() int64 { return s.stats.RLSLookups.Load() })
	r.CounterFunc("gridrdb_bin_forwards_total", "Remote forwards that used the binary row framing.", func() int64 { return s.stats.BinForwards.Load() })

	r.CounterFunc("gridrdb_unity_queries_total", "Federation queries executed.", func() int64 { q, _, _ := s.fed.Stats(); return q })
	r.CounterFunc("gridrdb_unity_subqueries_total", "Federation sub-queries issued.", func() int64 { _, sq, _ := s.fed.Stats(); return sq })
	r.CounterFunc("gridrdb_unity_pushdowns_total", "Federation whole-query pushdowns.", func() int64 { _, _, p := s.fed.Stats(); return p })
	return o
}

// log emits one structured record with the query id from ctx appended.
// The Enabled check keeps disabled handlers (the default DiscardHandler)
// off the hot path.
func (o *serviceObsv) log(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if o == nil || !o.logger.Enabled(ctx, level) {
		return
	}
	attrs = append(attrs, slog.String("query_id", obsv.QueryID(ctx)))
	o.logger.LogAttrs(ctx, level, msg, attrs...)
}

// ---- per-query tracks ----

type trackKey struct{}

// trackFrom returns the query track carried by ctx, or nil.
func trackFrom(ctx context.Context) *qtrack {
	t, _ := ctx.Value(trackKey{}).(*qtrack)
	return t
}

// qtrack accumulates one query's observability state. All mutable fields
// are atomics: the routing core may run on qcache's detached
// singleflight goroutine while the edge (or a stream consumer) reads.
type qtrack struct {
	svc     *Service
	id      string
	sqlText string
	start   time.Time

	class                                 atomic.Int32
	parseNs, routeNs, backendNs, streamNs atomic.Int64
	streamStart                           atomic.Int64 // unix nanos; 0 = not streaming
	rows, bytes                           atomic.Int64
	// admOutcome / admWaitNs record how the query fared at the admission
	// gate (admitNone when the gate is off or was never consulted).
	admOutcome atomic.Int32
	admWaitNs  atomic.Int64

	// plan / rp capture the routing outcome for lazy explain assembly;
	// only a query slow enough for the ring pays to describe itself.
	plan atomic.Pointer[unity.Plan]
	rp   atomic.Pointer[remotePlan]
	// sx captures how a streamed execution ran (operator label, spill
	// telemetry); its Stats are only read at finish, when the stream has
	// drained or been closed and the operator counters are final.
	sx atomic.Pointer[unity.StreamExec]

	done atomic.Bool
}

// beginTrack assigns the query id and starts the track, attaching both
// to the returned context. With observability disabled it returns the
// context untouched and a nil track (every track method is nil-safe).
func (s *Service) beginTrack(ctx context.Context, sqlText string) (context.Context, *qtrack) {
	o := s.obs
	if !o.enabled {
		return ctx, nil
	}
	ctx, id := obsv.EnsureQueryID(ctx)
	t := &qtrack{svc: s, id: id, sqlText: sqlText, start: time.Now()}
	t.class.Store(classUnknown)
	o.inflight.Add(1)
	return context.WithValue(ctx, trackKey{}, t), t
}

// now returns the wall clock for phase timing, or the zero time on a nil
// track so the disabled path never reads the clock.
func (t *qtrack) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

func (t *qtrack) addParse(since time.Time) {
	if t != nil {
		t.parseNs.Add(int64(time.Since(since)))
	}
}

func (t *qtrack) addRoute(since time.Time) {
	if t != nil {
		t.routeNs.Add(int64(time.Since(since)))
	}
}

func (t *qtrack) addBackend(since time.Time) {
	if t != nil {
		t.backendNs.Add(int64(time.Since(since)))
	}
}

func (t *qtrack) setClass(c int32) {
	if t != nil {
		t.class.Store(c)
	}
}

func (t *qtrack) notePlan(p *unity.Plan) {
	if t != nil {
		t.plan.Store(p)
	}
}

func (t *qtrack) noteRemote(rp *remotePlan) {
	if t != nil {
		t.rp.Store(rp)
	}
}

func (t *qtrack) noteRows(n int64) {
	if t != nil {
		t.rows.Add(n)
	}
}

func (t *qtrack) noteStreamExec(ex *unity.StreamExec) {
	if t != nil && ex != nil {
		t.sx.Store(ex)
	}
}

func (t *qtrack) noteAdmission(outcome int32, waited time.Duration) {
	if t != nil {
		t.admOutcome.Store(outcome)
		t.admWaitNs.Store(int64(waited))
	}
}

// admissionLabel renders a gate outcome for explain maps, slow-query
// records and completion logs ("" when the gate was not consulted).
func admissionLabel(outcome int32, waited time.Duration) string {
	switch outcome {
	case admitImmediate:
		return "immediate"
	case admitQueued:
		return fmt.Sprintf("queued %dms", waited.Milliseconds())
	default:
		return ""
	}
}

// beginStream marks the hand-off from routing to consumer-paced
// delivery; finish turns it into the stream phase.
func (t *qtrack) beginStream() {
	if t != nil {
		t.streamStart.Store(time.Now().UnixNano())
	}
}

// finish closes the track exactly once: the route-class counter and
// latency histogram, the delivery counters, the completion log record,
// and — past the threshold — the slow-query capture.
func (t *qtrack) finish(err error) {
	if t == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	o := t.svc.obs
	o.inflight.Add(-1)
	dur := time.Since(t.start)
	if ss := t.streamStart.Load(); ss > 0 {
		t.streamNs.Store(time.Now().UnixNano() - ss)
	}
	//lint:ignore ctxflow completion logging outlives the request: the track finishes after the caller's context is cancelled, and log emission must not inherit that cancellation
	ctx := obsv.WithQueryID(context.Background(), t.id)
	// Spill telemetry is charged whether the query succeeded or not: the
	// disk traffic happened either way, and the stats are final here (the
	// stream has drained, failed, or been closed).
	sx := t.sx.Load()
	if sx != nil {
		if st := sx.Stats; st != nil && st.Spilled {
			o.spilledQueries.Inc()
			o.spillPartitions.Add(st.SpillPartitions)
			o.spillRuns.Add(st.SpillRuns)
			o.spillBytes.Add(st.SpillBytes)
			o.spillSeconds.ObserveDuration(time.Duration(st.SpillNanos))
		}
	}
	if err != nil {
		o.errors.Inc()
		o.log(ctx, slog.LevelWarn, "query failed",
			slog.Duration("elapsed", dur),
			slog.String("error", err.Error()))
		return
	}
	c := t.class.Load()
	if c < 0 || c >= nClasses {
		c = classUnknown
	}
	o.queries[c].Inc()
	o.latency[c].ObserveDuration(dur)
	rows, bytes := t.rows.Load(), t.bytes.Load()
	o.rowsOut.Add(rows)
	o.bytesOut.Add(bytes)
	o.log(ctx, slog.LevelInfo, "query done",
		slog.String("route", classNames[c]),
		slog.Duration("elapsed", dur),
		slog.Int64("rows", rows))
	if o.slow != nil && dur >= o.slowThreshold {
		em := t.svc.explainMap(classNames[c], t.plan.Load(), t.rp.Load(), c == classCache)
		// The admission outcome makes overload incidents debuggable from
		// the slow ring: "queued 1400ms" on a slow query says the time
		// went to the gate, not the backend.
		if adm := admissionLabel(t.admOutcome.Load(), time.Duration(t.admWaitNs.Load())); adm != "" {
			em["admission"] = adm
		}
		if sx != nil {
			// The executed operator trumps the plan-time label (they only
			// differ when execution downgraded), and a spilled query carries
			// its runtime spill numbers.
			em["operator"] = sx.Operator
			if sx.Fallback != "" {
				em["stream_fallback"] = sx.Fallback
			}
			if st := sx.Stats; st != nil && st.Spilled {
				em["spill"] = map[string]interface{}{
					"partitions": st.SpillPartitions,
					"runs":       st.SpillRuns,
					"bytes":      st.SpillBytes,
					"nanos":      st.SpillNanos,
				}
			}
		}
		e := obsv.SlowEntry{
			QueryID:      t.id,
			SQL:          t.sqlText,
			Route:        classNames[c],
			Start:        t.start,
			Duration:     dur,
			PhaseParse:   time.Duration(t.parseNs.Load()),
			PhaseRoute:   time.Duration(t.routeNs.Load()),
			PhaseBackend: time.Duration(t.backendNs.Load()),
			PhaseStream:  time.Duration(t.streamNs.Load()),
			Rows:         rows,
			Bytes:        bytes,
			Explain:      em,
		}
		o.slow.Record(e)
		o.log(ctx, slog.LevelWarn, "slow query",
			slog.String("route", classNames[c]),
			slog.Duration("elapsed", dur),
			slog.String("sql", t.sqlText))
	}
}

// trackIter finalizes a streamed query's track when the stream drains
// (or is closed) and counts the rows and bytes it delivered.
type trackIter struct {
	inner sqlengine.RowIter
	t     *qtrack
}

func (it *trackIter) Columns() []string { return it.inner.Columns() }

func (it *trackIter) Next() (sqlengine.Row, error) {
	row, err := it.inner.Next()
	switch err {
	case nil:
		it.t.rows.Add(1)
		it.t.bytes.Add(rowBytes(row))
		return row, nil
	case io.EOF:
		it.t.finish(nil)
		return nil, io.EOF
	default:
		it.t.finish(err)
		return nil, err
	}
}

func (it *trackIter) Close() error {
	err := it.inner.Close()
	// An abandoned stream still completes its track: latency then covers
	// opening through abandonment, under the route class that produced it.
	it.t.finish(nil)
	return err
}

// trackStream wraps a routed stream's iterator so the track finishes
// when the consumer is done with it.
func (s *Service) trackStream(sr *StreamResult, t *qtrack) *StreamResult {
	if t == nil {
		return sr
	}
	t.beginStream()
	sr.iter = &trackIter{inner: sr.iter, t: t}
	return sr
}

// ---- service surfaces ----

// Metrics exposes the service's metric registry (the /metrics endpoint
// and system.metrics read from it).
func (s *Service) Metrics() *obsv.Registry { return s.obs.reg }

// SlowQueries snapshots the slow-query ring, most recent first (empty
// when no threshold is configured).
func (s *Service) SlowQueries() []obsv.SlowEntry {
	if s.obs.slow == nil {
		return nil
	}
	return s.obs.slow.Snapshot()
}

// SlowQueryTotal counts queries ever admitted to the slow log.
func (s *Service) SlowQueryTotal() int64 {
	if s.obs.slow == nil {
		return 0
	}
	return s.obs.slow.Total()
}

// SlowQueryCap reports the slow ring's retention bound (0 = capture off).
func (s *Service) SlowQueryCap() int {
	if s.obs.slow == nil {
		return 0
	}
	return s.obs.slow.Cap()
}
