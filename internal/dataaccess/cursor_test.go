package dataaccess

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/leaktest"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// ---- a lazy, counting row producer ----

// pagedDriver serves `total` generated rows one at a time, counting how
// many the database/sql layer actually pulled — the probe that proves the
// cursor path never materializes a scan. With blockAfter >= 0 the
// (blockAfter+1)-th row blocks until the query's context is cancelled,
// emulating a backend mid-scan stall.
type pagedDriver struct {
	total      int
	blockAfter int // -1: never block
	served     atomic.Int64
	blocked    chan struct{} // signalled when a Next starts blocking
	cancelled  atomic.Int64  // queries that observed ctx cancellation
	rowsClosed atomic.Int64  // driver.Rows closed (resources released)
}

func newPagedDriver(total, blockAfter int) *pagedDriver {
	return &pagedDriver{total: total, blockAfter: blockAfter, blocked: make(chan struct{}, 16)}
}

func (d *pagedDriver) Open(string) (driver.Conn, error) { return &pagedConn{d: d}, nil }

type pagedConn struct{ d *pagedDriver }

func (c *pagedConn) Prepare(string) (driver.Stmt, error) {
	return nil, errors.New("pageddrv: prepare unsupported")
}
func (c *pagedConn) Close() error              { return nil }
func (c *pagedConn) Begin() (driver.Tx, error) { return nil, errors.New("pageddrv: no transactions") }

func (c *pagedConn) QueryContext(ctx context.Context, _ string, _ []driver.NamedValue) (driver.Rows, error) {
	return &pagedRows{d: c.d, ctx: ctx}, nil
}

type pagedRows struct {
	d   *pagedDriver
	ctx context.Context
	i   int
}

func (r *pagedRows) Columns() []string { return []string{"a"} }
func (r *pagedRows) Close() error      { r.d.rowsClosed.Add(1); return nil }

func (r *pagedRows) Next(dest []driver.Value) error {
	if r.d.blockAfter >= 0 && r.i == r.d.blockAfter {
		select {
		case r.d.blocked <- struct{}{}:
		default:
		}
		<-r.ctx.Done()
		r.d.cancelled.Add(1)
		return r.ctx.Err()
	}
	if r.i >= r.d.total {
		return io.EOF
	}
	dest[0] = int64(r.i)
	r.i++
	r.d.served.Add(1)
	return nil
}

var pagedDriverSeq atomic.Int64

// registerPagedSource registers a fresh paged driver under a unique name
// and returns it plus a SourceRef/LowerSpec pair exposing the logical
// table "paged_t"(a INTEGER).
func registerPagedSource(total, blockAfter int) (*pagedDriver, xspec.SourceRef, *xspec.LowerSpec) {
	d := newPagedDriver(total, blockAfter)
	name := fmt.Sprintf("pageddrv%d", pagedDriverSeq.Add(1))
	sql.Register(name, d)
	ref := xspec.SourceRef{Name: "paged_src_" + name, URL: "paged://" + name, Driver: name}
	spec := &xspec.LowerSpec{
		Name:    ref.Name,
		Dialect: "ansi",
		Tables: []xspec.TableSpec{{
			Name: "paged_t", Logical: "paged_t",
			Columns: []xspec.ColumnSpec{{Name: "a", Logical: "a", Kind: "INTEGER"}},
		}},
	}
	return d, ref, spec
}

// TestCursorLifecycle walks the whole open -> fetch -> close protocol on a
// real mart: chunk sizes are respected, the terminal chunk reports done,
// fetching past the end stays done instead of erroring, and double-close
// is a no-op.
func TestCursorLifecycle(t *testing.T) {
	s := New(Config{Name: "jc-cursor"})
	defer s.Close()
	_, spec := mkMart(t, "cur_mart", sqlengine.DialectMySQL, "events", 10)
	addMart(t, s, "cur_mart", spec, "gridsql-mysql")

	info, err := s.OpenCursor(context.Background(), "SELECT event_id FROM events ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Columns) != 1 || !strings.EqualFold(info.Columns[0], "event_id") {
		t.Fatalf("columns = %v", info.Columns)
	}
	if s.CursorCount() != 1 {
		t.Fatalf("cursor count = %d, want 1", s.CursorCount())
	}

	var got []int64
	for i := 0; i < 2; i++ {
		rows, done, err := s.FetchCursor(info.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 || done {
			t.Fatalf("chunk %d: %d rows done=%v, want 4 rows not done", i, len(rows), done)
		}
		for _, r := range rows {
			got = append(got, r[0].Int)
		}
	}
	rows, done, err := s.FetchCursor(info.ID, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !done {
		t.Fatalf("final chunk: %d rows done=%v, want 2 rows done", len(rows), done)
	}
	for _, r := range rows {
		got = append(got, r[0].Int)
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("row order: got %v", got)
		}
	}

	// Fetch past the end: empty, still done, not an error.
	rows, done, err = s.FetchCursor(info.ID, 4)
	if err != nil || len(rows) != 0 || !done {
		t.Fatalf("past-end fetch: rows=%d done=%v err=%v", len(rows), done, err)
	}

	if !s.CloseCursor(info.ID) {
		t.Fatal("close reported the cursor missing")
	}
	if s.CloseCursor(info.ID) {
		t.Fatal("double-close reported the cursor still present")
	}
	if s.CursorCount() != 0 {
		t.Fatalf("cursor count after close = %d", s.CursorCount())
	}
	if _, _, err := s.FetchCursor(info.ID, 1); err == nil {
		t.Fatal("fetch after close should error")
	}
}

// TestCursorBoundedPull is the acceptance criterion for server memory: a
// cursor over a 10k-row scan buffers at most fetch-size rows — the
// backend is pulled row by row per chunk, never materialized.
func TestCursorBoundedPull(t *testing.T) {
	s := New(Config{Name: "jc-bounded"})
	defer s.Close()
	d, ref, spec := registerPagedSource(10000, -1)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	info, err := s.OpenCursor(context.Background(), "SELECT a FROM paged_t")
	if err != nil {
		t.Fatal(err)
	}
	defer s.CloseCursor(info.ID)

	const fetchSize = 50
	for i := 0; i < 3; i++ {
		rows, done, err := s.FetchCursor(info.ID, fetchSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) > fetchSize {
			t.Fatalf("chunk %d holds %d rows, exceeding the fetch size %d", i, len(rows), fetchSize)
		}
		if done {
			t.Fatalf("done after %d of 10000 rows", (i+1)*fetchSize)
		}
	}
	// The backend must have served only what was fetched (plus at most a
	// single look-ahead row), not the whole table.
	if served := d.served.Load(); served > 3*fetchSize+1 {
		t.Fatalf("backend served %d rows for %d fetched: scan was materialized", served, 3*fetchSize)
	}

	if !s.CloseCursor(info.ID) {
		t.Fatal("close failed")
	}
	// Closing releases the backend cursor.
	waitFor(t, 2*time.Second, func() bool { return d.rowsClosed.Load() == 1 })
}

// TestCursorTTLReap proves abandoned cursors are collected: an idle cursor
// past its TTL is cancelled by the janitor, its backend resources are
// released, and later fetches fail.
func TestCursorTTLReap(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	s := New(Config{Name: "jc-reap", CursorTTL: 40 * time.Millisecond})
	d, ref, spec := registerPagedSource(10000, -1)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	info, err := s.OpenCursor(context.Background(), "SELECT a FROM paged_t")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.FetchCursor(info.ID, 8); err != nil {
		t.Fatal(err)
	}
	// Abandon it: the janitor (interval TTL/2) must reap without help.
	waitFor(t, 5*time.Second, func() bool { return s.CursorCount() == 0 })
	waitFor(t, 2*time.Second, func() bool { return d.rowsClosed.Load() == 1 })
	if s.CursorsReaped() != 1 {
		t.Fatalf("reaped counter = %d, want 1", s.CursorsReaped())
	}
	if _, _, err := s.FetchCursor(info.ID, 1); err == nil {
		t.Fatal("fetch on a reaped cursor should error")
	}
	s.Close()
	checkLeaks()
}

// TestCursorCloseCancelsBlockedProducer: close must cancel the producing
// query's context even while a fetch is blocked inside the backend —
// that cancellation is exactly what unblocks the fetch.
func TestCursorCloseCancelsBlockedProducer(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	s := New(Config{Name: "jc-blockclose"})
	d, ref, spec := registerPagedSource(100, 5)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	info, err := s.OpenCursor(context.Background(), "SELECT a FROM paged_t")
	if err != nil {
		t.Fatal(err)
	}
	fetchErr := make(chan error, 1)
	go func() {
		_, _, err := s.FetchCursor(info.ID, 10) // blocks at row 6
		fetchErr <- err
	}()
	select {
	case <-d.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never reached the blocking row")
	}
	s.CloseCursor(info.ID)
	select {
	case err := <-fetchErr:
		if err == nil {
			t.Fatal("blocked fetch returned no error after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not unblock the in-flight fetch (deadlock)")
	}
	if d.cancelled.Load() != 1 {
		t.Fatalf("backend cancellations = %d, want 1", d.cancelled.Load())
	}
	s.Close()
	checkLeaks()
}

// TestQueryStreamClientDisconnect is the in-process disconnect story:
// cancelling the QueryStream context mid-iteration stops the producing
// backend query and leaks no goroutines.
func TestQueryStreamClientDisconnect(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	s := New(Config{Name: "jc-streamcancel"})
	d, ref, spec := registerPagedSource(100, 5)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sr, err := s.QueryStreamContext(ctx, "SELECT a FROM paged_t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	go func() {
		<-d.blocked
		cancel() // the consumer walks away mid-scan
	}()
	if _, err := sr.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next after disconnect = %v, want a cancellation error", err)
	}
	sr.Close()
	if d.cancelled.Load() != 1 {
		t.Fatalf("backend cancellations = %d, want 1", d.cancelled.Load())
	}
	cancel()
	s.Close()
	checkLeaks()
}

// TestCursorOverXMLRPC drives the wire protocol end to end: open/fetch/
// close through a Clarens server, including chunk decoding and the
// close-cancels-backend contract.
func TestCursorOverXMLRPC(t *testing.T) {
	s := New(Config{Name: "jc-rpc-cursor"})
	defer s.Close()
	_, spec := mkMart(t, "rpc_mart", sqlengine.DialectMySQL, "events", 9)
	addMart(t, s, "rpc_mart", spec, "gridsql-mysql")

	srv := clarens.NewServer(true)
	s.RegisterMethods(srv)
	url, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := clarens.NewClient(url)

	res, err := c.Call("system.cursor.open", "SELECT event_id FROM events ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	m := res.(map[string]interface{})
	id, _ := m["cursor"].(string)
	if id == "" {
		t.Fatalf("open response: %v", m)
	}
	// ORDER BY is not RAL-extractable, so the scan is a Unity pushdown —
	// still a true streaming route.
	if route, _ := m["route"].(string); route != string(RouteUnity) {
		t.Fatalf("route = %q, want unity", route)
	}

	total := 0
	for {
		res, err := c.Call("system.cursor.fetch", id, int64(4))
		if err != nil {
			t.Fatal(err)
		}
		chunk, err := DecodeChunk(res)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk.Rows) > 4 {
			t.Fatalf("chunk of %d rows exceeds the fetch size", len(chunk.Rows))
		}
		total += len(chunk.Rows)
		if chunk.Done {
			break
		}
	}
	if total != 9 {
		t.Fatalf("streamed %d rows, want 9", total)
	}
	closed, err := c.Call("system.cursor.close", id)
	if err != nil || closed != true {
		t.Fatalf("close = %v, %v", closed, err)
	}
	if _, err := c.Call("system.cursor.fetch", id, int64(1)); err == nil {
		t.Fatal("fetch on a closed cursor should fault")
	}
}

// TestCursorConcurrentHammer races many cursors — and many fetchers of
// one shared cursor — to give the race detector surface area and prove
// rows are neither lost nor duplicated under contention.
func TestCursorConcurrentHammer(t *testing.T) {
	s := New(Config{Name: "jc-hammer"})
	defer s.Close()
	_, spec := mkMart(t, "ham_mart", sqlengine.DialectMySQL, "events", 60)
	addMart(t, s, "ham_mart", spec, "gridsql-mysql")
	const q = "SELECT event_id FROM events ORDER BY event_id"

	// Phase 1: independent cursors from many goroutines.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 5; iter++ {
				info, err := s.OpenCursor(context.Background(), q)
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(3) == 0 {
					s.CloseCursor(info.ID) // abandon early
					continue
				}
				total := 0
				for {
					n := 1 + rng.Intn(20)
					rows, done, err := s.FetchCursor(info.ID, n)
					if err != nil {
						t.Error(err)
						return
					}
					if len(rows) > n {
						t.Errorf("chunk %d > fetch size %d", len(rows), n)
						return
					}
					total += len(rows)
					if done {
						break
					}
				}
				if total != 60 {
					t.Errorf("cursor streamed %d rows, want 60", total)
				}
				s.CloseCursor(info.ID)
				s.CloseCursor(info.ID) // racy double-close must stay safe
			}
		}(int64(g))
	}
	wg.Wait()

	// Phase 2: several goroutines draining one shared cursor; every row
	// must be delivered exactly once across them.
	info, err := s.OpenCursor(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var seen sync.Map
	var total atomic.Int64
	var wg2 sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for {
				rows, done, err := s.FetchCursor(info.ID, 7)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range rows {
					if _, dup := seen.LoadOrStore(r[0].Int, true); dup {
						t.Errorf("row %d delivered twice", r[0].Int)
					}
					total.Add(1)
				}
				if done {
					return
				}
			}
		}()
	}
	wg2.Wait()
	if total.Load() != 60 {
		t.Fatalf("shared cursor delivered %d rows, want 60", total.Load())
	}
	s.CloseCursor(info.ID)
	if s.CursorCount() != 0 {
		t.Fatalf("cursors left registered: %d", s.CursorCount())
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
