package dataaccess

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// RegisterMethods installs the data access service's methods on a Clarens
// server, forming the web-service interface of the paper:
//
//	dataaccess.query(sql)                     -> {columns, rows}
//	dataaccess.tables()                       -> [logical names]
//	dataaccess.schema(table)                  -> {columns: [{name,kind,...}]}
//	dataaccess.addDatabase(xspecURL, driver, url [, user, password])
//	dataaccess.removeDatabase(name)
//	dataaccess.sources()                      -> [source names]
//	system.cachestats()                       -> {enabled, hits, misses, ...}
//	system.cacheflush()                       -> entries dropped
//	system.cursor.open(sql [, params...])     -> {cursor, columns, route, servers, ttl_ms}
//	system.cursor.fetch(cursor [, n])         -> {rows, done}
//	system.cursor.close(cursor)               -> existed
func (s *Service) RegisterMethods(srv *clarens.Server) {
	srv.Register("dataaccess.query", func(ctx context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("dataaccess.query requires (sql [, params...])")
		}
		sqlText, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("dataaccess.query: sql must be a string")
		}
		params, err := xmlrpcParams(args[1:])
		if err != nil {
			return nil, err
		}
		qr, err := s.QueryContext(ctx, sqlText, params...)
		if err != nil {
			return nil, err
		}
		res := EncodeResult(qr.ResultSet)
		res["route"] = string(qr.Route)
		res["servers"] = int64(qr.Servers)
		return res, nil
	})

	srv.Register("dataaccess.tables", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		names := s.fed.Dictionary().LogicalTables()
		out := make([]interface{}, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})

	srv.Register("dataaccess.schema", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("dataaccess.schema requires (table)")
		}
		table, _ := args[0].(string)
		locs := s.fed.Dictionary().Lookup(table)
		if len(locs) == 0 {
			return nil, fmt.Errorf("dataaccess: unknown table %q", table)
		}
		spec := locs[0].Spec
		cols := make([]interface{}, len(spec.Columns))
		for i, c := range spec.Columns {
			cols[i] = map[string]interface{}{
				"name":     c.Logical,
				"physical": c.Name,
				"kind":     c.Kind,
				"nullable": c.Nullable,
				"key":      c.Key,
			}
		}
		return map[string]interface{}{
			"table":    table,
			"replicas": int64(len(locs)),
			"columns":  cols,
		}, nil
	})

	srv.Register("dataaccess.addDatabase", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 3 {
			return nil, fmt.Errorf("dataaccess.addDatabase requires (xspecURL, driver, url [, user, password])")
		}
		xspecURL, _ := args[0].(string)
		driver, _ := args[1].(string)
		url, _ := args[2].(string)
		user, password := "", ""
		if len(args) >= 5 {
			user, _ = args[3].(string)
			password, _ = args[4].(string)
		}
		name, err := s.PlugIn(xspecURL, driver, url, user, password)
		if err != nil {
			return nil, err
		}
		return name, nil
	})

	srv.Register("dataaccess.removeDatabase", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("dataaccess.removeDatabase requires (name)")
		}
		name, _ := args[0].(string)
		if err := s.RemoveDatabase(name); err != nil {
			return nil, err
		}
		return true, nil
	})

	srv.Register("dataaccess.sources", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		names := s.fed.Sources()
		out := make([]interface{}, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})

	srv.Register("system.cachestats", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		st := s.CacheStats()
		return map[string]interface{}{
			"enabled":       s.CacheEnabled(),
			"hits":          st.Hits,
			"misses":        st.Misses,
			"evictions":     st.Evictions,
			"expirations":   st.Expirations,
			"invalidations": st.Invalidations,
			"coalesced":     st.Coalesced,
			"rejected":      st.Rejected,
			"entries":       int64(st.Entries),
			"bytes":         st.Bytes,
		}, nil
	})

	srv.Register("system.cacheflush", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		return int64(s.CacheFlush()), nil
	})

	// The cursor protocol pages a large scan across multiple calls with
	// bounded server memory: open starts the streaming query and returns a
	// cursor id, fetch returns chunks of at most fetchSize rows, close (or
	// the idle-TTL reaper) cancels the producing query. The producing
	// query's context is the cursor's own, not any one request's, so it
	// survives between fetches and dies with the cursor.
	srv.Register("system.cursor.open", func(ctx context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("system.cursor.open requires (sql [, params...])")
		}
		sqlText, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("system.cursor.open: sql must be a string")
		}
		params, err := xmlrpcParams(args[1:])
		if err != nil {
			return nil, err
		}
		info, err := s.OpenCursor(ctx, sqlText, params...)
		if err != nil {
			return nil, err
		}
		cols := make([]interface{}, len(info.Columns))
		for i, c := range info.Columns {
			cols[i] = c
		}
		return map[string]interface{}{
			"cursor":  info.ID,
			"columns": cols,
			"route":   string(info.Route),
			"servers": int64(info.Servers),
			"ttl_ms":  info.TTL.Milliseconds(),
		}, nil
	})

	srv.Register("system.cursor.fetch", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, fmt.Errorf("system.cursor.fetch requires (cursor [, n])")
		}
		id, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("system.cursor.fetch: cursor must be a string")
		}
		n := 0
		if len(args) == 2 {
			nn, ok := args[1].(int64)
			if !ok {
				return nil, fmt.Errorf("system.cursor.fetch: n must be an int, got %T", args[1])
			}
			n = int(nn)
		}
		rows, done, err := s.FetchCursor(id, n)
		if err != nil {
			return nil, err
		}
		return EncodeChunk(rows, done), nil
	})

	srv.Register("system.cursor.close", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("system.cursor.close requires (cursor)")
		}
		id, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("system.cursor.close: cursor must be a string")
		}
		return s.CloseCursor(id), nil
	})
}

func xmlrpcParams(args []interface{}) ([]sqlengine.Value, error) {
	out := make([]sqlengine.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = sqlengine.Null()
		case int64:
			out[i] = sqlengine.NewInt(x)
		case float64:
			out[i] = sqlengine.NewFloat(x)
		case string:
			out[i] = sqlengine.NewString(x)
		case bool:
			out[i] = sqlengine.NewBool(x)
		case time.Time:
			out[i] = sqlengine.NewTime(x)
		case []byte:
			out[i] = sqlengine.NewBytes(x)
		default:
			return nil, fmt.Errorf("dataaccess: unsupported parameter type %T", a)
		}
	}
	return out, nil
}

// PlugIn implements §4.10: given the URL of a database's XSpec file, the
// driver name and the database location, download and parse the spec,
// connect with the right driver, and register the database's tables.
// XSpec URLs may be http(s):// or file:// (or bare paths).
func (s *Service) PlugIn(xspecURL, driver, dbURL, user, password string) (string, error) {
	data, err := fetchSpec(xspecURL)
	if err != nil {
		return "", fmt.Errorf("dataaccess: fetch xspec: %w", err)
	}
	spec, err := xspec.ParseLower(data)
	if err != nil {
		return "", err
	}
	if spec.Name == "" {
		return "", fmt.Errorf("dataaccess: xspec at %s has no database name", xspecURL)
	}
	ref := xspec.SourceRef{Name: spec.Name, URL: dbURL, Driver: driver, XSpec: xspecURL}
	if err := s.AddDatabase(ref, spec, user, password); err != nil {
		return "", err
	}
	return spec.Name, nil
}

func fetchSpec(url string) ([]byte, error) {
	switch {
	case strings.HasPrefix(url, "http://") || strings.HasPrefix(url, "https://"):
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	case strings.HasPrefix(url, "file://"):
		return os.ReadFile(strings.TrimPrefix(url, "file://"))
	default:
		return os.ReadFile(url)
	}
}
