package dataaccess

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/obsv"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// RegisterMethods installs the data access service's methods on a Clarens
// server, forming the web-service interface of the paper:
//
//	dataaccess.query(sql)                     -> {columns, rows}
//	dataaccess.queryb(sql)                    -> {columns, rowsb}   (binary row frame, negotiated)
//	dataaccess.tables()                       -> [logical names]
//	dataaccess.schema(table)                  -> {columns: [{name,kind,...}]}
//	dataaccess.addDatabase(xspecURL, driver, url [, user, password])
//	dataaccess.removeDatabase(name)
//	dataaccess.sources()                      -> [source names]
//	system.capabilities()                     -> {rowcodec, name}
//	system.cachestats()                       -> {enabled, hits, misses, ...}
//	system.cacheflush()                       -> entries dropped
//	system.cursorstats()                      -> {open, opened, fetches, rows, reaped}
//	system.cursor.open(sql [, params...])     -> {cursor, columns, route, servers, ttl_ms}
//	system.cursor.fetch(cursor [, n])         -> {rows, done}
//	system.cursor.fetchb(cursor [, n])        -> {rowsb, done}      (binary row frame, negotiated)
//	system.cursor.close(cursor)               -> existed
//	system.metrics()                          -> {name{labels}: value, ...} (unified snapshot)
//	system.explain(sql [, params...])         -> {route, cached, deps, ...} (no execution)
//	system.slowqueries([n])                   -> {threshold_ms, total, entries}
//	system.loadstats()                        -> {enabled, inflight, queued, tenants, ...}
//
// Result payloads are rendered by the zero-boxing wire codec: rows encode
// cell-direct into the response stream (wirecodec.go). queryb / fetchb are
// the server↔server fast path carrying rows as one binary base64 frame;
// they are only registered when the row codec is enabled, and peers
// discover them through system.capabilities — plain XML-RPC clients are
// unaffected.
func (s *Service) RegisterMethods(srv *clarens.Server) {
	queryArgs := func(method string, args []interface{}) (string, []sqlengine.Value, error) {
		if len(args) < 1 {
			return "", nil, fmt.Errorf("%s requires (sql [, params...])", method)
		}
		sqlText, ok := args[0].(string)
		if !ok {
			return "", nil, fmt.Errorf("%s: sql must be a string", method)
		}
		params, err := xmlrpcParams(args[1:])
		return sqlText, params, err
	}

	srv.Register("dataaccess.query", func(ctx context.Context, call *clarens.CallContext, args []interface{}) (interface{}, error) {
		sqlText, params, err := queryArgs("dataaccess.query", args)
		if err != nil {
			return nil, err
		}
		qr, err := s.QueryContext(WithCaller(ctx, call.User, call.Session), sqlText, params...)
		if err != nil {
			return nil, err
		}
		res := WireResult(qr.ResultSet)
		res["route"] = string(qr.Route)
		res["servers"] = int64(qr.Servers)
		return res, nil
	})

	rowCodec := RowCodecVersion
	if s.cfg.DisableBinRows {
		rowCodec = 0
	}
	srv.Register("system.capabilities", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		return map[string]interface{}{
			"rowcodec": int64(rowCodec),
			"name":     s.cfg.Name,
		}, nil
	})

	if !s.cfg.DisableBinRows {
		srv.Register("dataaccess.queryb", func(ctx context.Context, call *clarens.CallContext, args []interface{}) (interface{}, error) {
			sqlText, params, err := queryArgs("dataaccess.queryb", args)
			if err != nil {
				return nil, err
			}
			qr, err := s.QueryContext(WithCaller(ctx, call.User, call.Session), sqlText, params...)
			if err != nil {
				return nil, err
			}
			res := wireResultBinary(qr.ResultSet)
			res["route"] = string(qr.Route)
			res["servers"] = int64(qr.Servers)
			return res, nil
		})
	}

	srv.Register("dataaccess.tables", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		names := s.fed.Dictionary().LogicalTables()
		out := make([]interface{}, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})

	srv.Register("dataaccess.schema", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("dataaccess.schema requires (table)")
		}
		table, _ := args[0].(string)
		locs := s.fed.Dictionary().Lookup(table)
		if len(locs) == 0 {
			return nil, fmt.Errorf("dataaccess: unknown table %q", table)
		}
		spec := locs[0].Spec
		cols := make([]interface{}, len(spec.Columns))
		for i, c := range spec.Columns {
			cols[i] = map[string]interface{}{
				"name":     c.Logical,
				"physical": c.Name,
				"kind":     c.Kind,
				"nullable": c.Nullable,
				"key":      c.Key,
			}
		}
		return map[string]interface{}{
			"table":    table,
			"replicas": int64(len(locs)),
			"columns":  cols,
		}, nil
	})

	srv.Register("dataaccess.addDatabase", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 3 {
			return nil, fmt.Errorf("dataaccess.addDatabase requires (xspecURL, driver, url [, user, password])")
		}
		xspecURL, _ := args[0].(string)
		driver, _ := args[1].(string)
		url, _ := args[2].(string)
		user, password := "", ""
		if len(args) >= 5 {
			user, _ = args[3].(string)
			password, _ = args[4].(string)
		}
		name, err := s.PlugIn(xspecURL, driver, url, user, password)
		if err != nil {
			return nil, err
		}
		return name, nil
	})

	srv.Register("dataaccess.removeDatabase", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("dataaccess.removeDatabase requires (name)")
		}
		name, _ := args[0].(string)
		if err := s.RemoveDatabase(name); err != nil {
			return nil, err
		}
		return true, nil
	})

	srv.Register("dataaccess.sources", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		names := s.fed.Sources()
		out := make([]interface{}, len(names))
		for i, n := range names {
			out[i] = n
		}
		return out, nil
	})

	srv.Register("system.cachestats", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		st := s.CacheStats()
		return map[string]interface{}{
			"enabled":       s.CacheEnabled(),
			"hits":          st.Hits,
			"misses":        st.Misses,
			"evictions":     st.Evictions,
			"expirations":   st.Expirations,
			"invalidations": st.Invalidations,
			"coalesced":     st.Coalesced,
			"rejected":      st.Rejected,
			"entries":       int64(st.Entries),
			"bytes":         st.Bytes,
		}, nil
	})

	srv.Register("system.cacheflush", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		return int64(s.CacheFlush()), nil
	})

	srv.Register("system.cursorstats", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		st := s.CursorStats()
		return map[string]interface{}{
			"open":            int64(st.Open),
			"opened":          st.Opened,
			"fetches":         st.Fetches,
			"rows":            st.RowsFetched,
			"reaped":          st.Reaped,
			"relay_opens":     st.RelayOpens,
			"relay_fetches":   st.RelayFetches,
			"relay_rows":      st.RelayRows,
			"relay_fallbacks": st.RelayFallbacks,
		}, nil
	})

	// The cursor protocol pages a large scan across multiple calls with
	// bounded server memory: open starts the streaming query and returns a
	// cursor id, fetch returns chunks of at most fetchSize rows, close (or
	// the idle-TTL reaper) cancels the producing query. The producing
	// query's context is the cursor's own, not any one request's, so it
	// survives between fetches and dies with the cursor.
	srv.Register("system.cursor.open", func(ctx context.Context, call *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("system.cursor.open requires (sql [, params...])")
		}
		sqlText, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("system.cursor.open: sql must be a string")
		}
		params, err := xmlrpcParams(args[1:])
		if err != nil {
			return nil, err
		}
		info, err := s.OpenCursor(WithCaller(ctx, call.User, call.Session), sqlText, params...)
		if err != nil {
			return nil, err
		}
		cols := make([]interface{}, len(info.Columns))
		for i, c := range info.Columns {
			cols[i] = c
		}
		return map[string]interface{}{
			"cursor":  info.ID,
			"columns": cols,
			"route":   string(info.Route),
			"servers": int64(info.Servers),
			"ttl_ms":  info.TTL.Milliseconds(),
		}, nil
	})

	fetchArgs := func(method string, args []interface{}) (string, int, error) {
		if len(args) < 1 || len(args) > 2 {
			return "", 0, fmt.Errorf("%s requires (cursor [, n])", method)
		}
		id, ok := args[0].(string)
		if !ok {
			return "", 0, fmt.Errorf("%s: cursor must be a string", method)
		}
		n := 0
		if len(args) == 2 {
			nn, ok := args[1].(int64)
			if !ok {
				return "", 0, fmt.Errorf("%s: n must be an int, got %T", method, args[1])
			}
			n = int(nn)
		}
		return id, n, nil
	}

	srv.Register("system.cursor.fetch", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		id, n, err := fetchArgs("system.cursor.fetch", args)
		if err != nil {
			return nil, err
		}
		rows, done, err := s.FetchCursor(id, n)
		if err != nil {
			return nil, err
		}
		return WireChunk(rows, done), nil
	})

	if !s.cfg.DisableBinRows {
		srv.Register("system.cursor.fetchb", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
			id, n, err := fetchArgs("system.cursor.fetchb", args)
			if err != nil {
				return nil, err
			}
			rows, done, err := s.FetchCursor(id, n)
			if err != nil {
				return nil, err
			}
			return wireChunkBinary(rows, done), nil
		})
	}

	srv.Register("system.cursor.close", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("system.cursor.close requires (cursor)")
		}
		id, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("system.cursor.close: cursor must be a string")
		}
		return s.CloseCursor(id), nil
	})

	// system.metrics is the unified counter/gauge/histogram snapshot — the
	// same registry the Prometheus /metrics endpoint renders, flattened to
	// {name{labels}: value}. Histograms contribute their _count and _sum.
	srv.Register("system.metrics", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		snap := s.Metrics().Snapshot()
		out := make(map[string]interface{}, len(snap))
		for k, v := range snap {
			out[k] = v
		}
		return out, nil
	})

	// system.explain describes the routing decision without executing.
	srv.Register("system.explain", func(ctx context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		sqlText, params, err := queryArgs("system.explain", args)
		if err != nil {
			return nil, err
		}
		return s.Explain(ctx, sqlText, params...)
	})

	// system.loadstats is the admission-control counterpart of
	// system.cachestats: the gate's live state and per-tenant admission,
	// shed and quota history.
	srv.Register("system.loadstats", func(_ context.Context, _ *clarens.CallContext, _ []interface{}) (interface{}, error) {
		ls := s.LoadStats()
		tenants := make([]interface{}, len(ls.Tenants))
		for i, tl := range ls.Tenants {
			tenants[i] = map[string]interface{}{
				"tenant":               tl.Tenant,
				"weight":               int64(tl.Weight),
				"admitted_immediate":   tl.AdmittedImmediate,
				"admitted_queued":      tl.AdmittedQueued,
				"shed":                 tl.Shed,
				"cancelled":            tl.Cancelled,
				"queued_ms":            tl.QueuedMs,
				"quota_denied_cursors": tl.QuotaDeniedCursors,
				"quota_denied_bytes":   tl.QuotaDeniedBytes,
				"sessions":             int64(tl.Sessions),
				"open_cursors":         int64(tl.OpenCursors),
				"streamed_bytes":       tl.StreamedBytes,
			}
		}
		return map[string]interface{}{
			"enabled":             ls.Enabled,
			"max_inflight":        int64(ls.MaxInFlight),
			"queue_cap":           int64(ls.QueueCap),
			"inflight":            int64(ls.InFlight),
			"queued":              int64(ls.Queued),
			"admitted_immediate":  ls.AdmittedImmediate,
			"admitted_queued":     ls.AdmittedQueued,
			"shed":                ls.Shed,
			"cancelled":           ls.Cancelled,
			"session_max_cursors": int64(ls.SessionMaxCursors),
			"session_max_bytes":   ls.SessionMaxBytes,
			"tenants":             tenants,
		}, nil
	})

	// system.slowqueries returns the slow-query ring, most recent first;
	// an optional n caps how many entries come back.
	srv.Register("system.slowqueries", func(_ context.Context, _ *clarens.CallContext, args []interface{}) (interface{}, error) {
		limit := -1
		if len(args) >= 1 {
			nn, ok := args[0].(int64)
			if !ok {
				return nil, fmt.Errorf("system.slowqueries: n must be an int, got %T", args[0])
			}
			limit = int(nn)
		}
		entries := s.SlowQueries()
		if limit >= 0 && limit < len(entries) {
			entries = entries[:limit]
		}
		list := make([]interface{}, len(entries))
		for i, e := range entries {
			list[i] = wireSlowEntry(e)
		}
		return map[string]interface{}{
			"threshold_ms": float64(s.cfg.SlowQueryThreshold) / float64(time.Millisecond),
			"capacity":     int64(s.SlowQueryCap()),
			"total":        s.SlowQueryTotal(),
			"entries":      list,
		}, nil
	})
}

// wireSlowEntry renders one slow-query capture for the wire.
func wireSlowEntry(e obsv.SlowEntry) map[string]interface{} {
	m := map[string]interface{}{
		"query_id":    e.QueryID,
		"sql":         e.SQL,
		"route":       e.Route,
		"start":       e.Start,
		"duration_ms": float64(e.Duration) / float64(time.Millisecond),
		"phases_ms": map[string]interface{}{
			"parse":   float64(e.PhaseParse) / float64(time.Millisecond),
			"route":   float64(e.PhaseRoute) / float64(time.Millisecond),
			"backend": float64(e.PhaseBackend) / float64(time.Millisecond),
			"stream":  float64(e.PhaseStream) / float64(time.Millisecond),
		},
		"rows":  e.Rows,
		"bytes": e.Bytes,
	}
	if e.Err != "" {
		m["error"] = e.Err
	}
	if e.Explain != nil {
		m["explain"] = e.Explain
	}
	return m
}

func xmlrpcParams(args []interface{}) ([]sqlengine.Value, error) {
	out := make([]sqlengine.Value, len(args))
	for i, a := range args {
		switch x := a.(type) {
		case nil:
			out[i] = sqlengine.Null()
		case int64:
			out[i] = sqlengine.NewInt(x)
		case float64:
			out[i] = sqlengine.NewFloat(x)
		case string:
			out[i] = sqlengine.NewString(x)
		case bool:
			out[i] = sqlengine.NewBool(x)
		case time.Time:
			out[i] = sqlengine.NewTime(x)
		case []byte:
			out[i] = sqlengine.NewBytes(x)
		default:
			return nil, fmt.Errorf("dataaccess: unsupported parameter type %T", a)
		}
	}
	return out, nil
}

// PlugIn implements §4.10: given the URL of a database's XSpec file, the
// driver name and the database location, download and parse the spec,
// connect with the right driver, and register the database's tables.
// XSpec URLs may be http(s):// or file:// (or bare paths).
func (s *Service) PlugIn(xspecURL, driver, dbURL, user, password string) (string, error) {
	data, err := fetchSpec(xspecURL)
	if err != nil {
		return "", fmt.Errorf("dataaccess: fetch xspec: %w", err)
	}
	spec, err := xspec.ParseLower(data)
	if err != nil {
		return "", err
	}
	if spec.Name == "" {
		return "", fmt.Errorf("dataaccess: xspec at %s has no database name", xspecURL)
	}
	ref := xspec.SourceRef{Name: spec.Name, URL: dbURL, Driver: driver, XSpec: xspecURL}
	if err := s.AddDatabase(ref, spec, user, password); err != nil {
		return "", err
	}
	return spec.Name, nil
}

func fetchSpec(url string) ([]byte, error) {
	switch {
	case strings.HasPrefix(url, "http://") || strings.HasPrefix(url, "https://"):
		client := &http.Client{Timeout: 30 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	case strings.HasPrefix(url, "file://"):
		return os.ReadFile(strings.TrimPrefix(url, "file://"))
	default:
		return os.ReadFile(url)
	}
}
