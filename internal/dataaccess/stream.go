package dataaccess

import (
	"context"
	"errors"
	"io"
	"log/slog"

	"gridrdb/internal/qcache"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/unity"
)

// StreamResult is a routed query answer delivered incrementally: rows are
// pulled from the producing backend as the consumer calls Next, so a scan
// larger than server memory never materializes here. It implements
// sqlengine.RowIter. Close releases the producing query's resources (and,
// on the streaming routes, cancels its backend work); it is idempotent
// and must always be called.
type StreamResult struct {
	cols []string
	// Route identifies which module produces the rows.
	Route Route
	// Servers is the number of Clarens servers involved (1 = local only).
	Servers int
	iter    sqlengine.RowIter
}

// Columns returns the result's column names.
func (sr *StreamResult) Columns() []string { return sr.cols }

// Next returns the next row, or (nil, io.EOF) after the last one.
func (sr *StreamResult) Next() (sqlengine.Row, error) { return sr.iter.Next() }

// Close releases the producer. Idempotent.
func (sr *StreamResult) Close() error { return sr.iter.Close() }

// ForEach drains the stream through fn, closing it afterwards; a non-nil
// error from fn stops the iteration (and the producing query) early.
func (sr *StreamResult) ForEach(fn func(sqlengine.Row) error) error {
	defer sr.Close()
	for {
		row, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// QueryStream is QueryStreamContext under context.Background.
func (s *Service) QueryStream(sqlText string, params ...sqlengine.Value) (*StreamResult, error) {
	return s.QueryStreamContext(context.Background(), sqlText, params...)
}

// QueryStreamContext is the streaming counterpart of QueryContext: parse,
// route, and return an incremental row stream instead of a materialized
// result set. Single-source scans — the POOL-RAL route and Unity pushdown
// plans, the shape of the paper's large Fig-6 scans — stream straight off
// the backend with bounded buffering. A query whose tables all live on
// one remote server streams through a cursor-to-cursor relay: a cursor is
// opened on the peer and pulled page by page, so no server on the path
// materializes the scan (peers without cursor support fall back to a
// materialized forward). Decomposed and mixed multi-server queries must
// integrate partial results first; their *inputs* stream incrementally
// into the integration engine (remote ones relayed), and the integrated
// result then streams from memory. Cancelling ctx (or closing the stream)
// stops the producing backend query mid-scan — across servers, closing a
// relayed stream closes the remote cursor.
//
// Cache interplay: a resident entry is served (from memory) without
// touching a backend. A cache miss fills the cache only while the
// accumulated result stays under the cache's per-entry admission cap —
// above that byte threshold the query streams past the cache, since a
// result too large to admit is exactly the result that must not be
// buffered. Without a byte budget (Config.CacheMaxBytes) streamed results
// are never admitted: an unbounded fill buffer would defeat streaming.
func (s *Service) QueryStreamContext(ctx context.Context, sqlText string, params ...sqlengine.Value) (*StreamResult, error) {
	s.stats.Queries.Add(1)
	ctx, t := s.beginTrack(ctx, sqlText)
	key := cacheKey(sqlText, params)
	// The invalidation epoch is snapshotted before the query executes —
	// not at insert time — so a schema change or mart refresh landing
	// while the scan is in flight suppresses the insert of the
	// pre-invalidation rows (the same discipline qcache.Do applies).
	var epoch int64
	if s.cache != nil {
		if qr, ok := s.cache.Get(key); ok {
			t.setClass(classCache)
			// A hit bypasses the admission gate (no backend work) but still
			// charges the session's streamed-byte quota: delivery is what
			// the quota meters, wherever the rows come from.
			sr := &StreamResult{
				cols:    qr.Columns,
				Route:   qr.Route,
				Servers: qr.Servers,
				iter:    sqlengine.SliceIter(qr.ResultSet),
			}
			return s.trackStream(s.gateStream(sr, nil, callerFrom(ctx)), t), nil
		}
		epoch = s.cache.Epoch()
	}
	// The admission gate sits between the cache (hits never consume a
	// slot) and the planner (a shed query never parses, plans, or opens a
	// backend connection). The slot stays held while the stream lives —
	// released when the consumer drains, errors, or closes it — so
	// MaxInFlight bounds concurrently *streaming* work, cursors included.
	tk, aerr := s.acquireSlot(ctx)
	if aerr != nil {
		t.finish(aerr)
		return nil, aerr
	}
	tp := t.now()
	plan, err := s.fed.PlanQuery(sqlText)
	t.addParse(tp)
	var unknown *unity.ErrUnknownTable
	var sr *StreamResult
	switch {
	case err == nil:
		t.notePlan(plan)
		sr, err = s.streamLocal(ctx, key, sqlText, plan, params, epoch)
	case errors.As(err, &unknown):
		sr, err = s.streamWithRemote(ctx, key, sqlText, params, epoch)
	default:
		tk.release()
		t.finish(err)
		return nil, err
	}
	if err != nil {
		tk.release()
		t.finish(err)
		return nil, err
	}
	return s.trackStream(s.gateStream(sr, tk, callerFrom(ctx)), t), nil
}

// streamLocal routes a fully-local streaming query, mirroring queryLocal's
// routing decision: POOL-RAL for simple single-source queries on
// supported vendors, Unity otherwise.
func (s *Service) streamLocal(ctx context.Context, key, sqlText string, plan *unity.Plan, params []sqlengine.Value, epoch int64) (*StreamResult, error) {
	t := trackFrom(ctx)
	if !s.cfg.DisableRAL && len(params) == 0 {
		if parts, ok, err := s.fed.ExtractRALParts(sqlText); err == nil && ok {
			s.mu.Lock()
			conn, supported := s.ralConns[parts.Source]
			s.mu.Unlock()
			if supported {
				t.setClass(classRAL)
				s.obs.log(ctx, slog.LevelDebug, "route: pool-ral (stream)", slog.String("source", parts.Source))
				tb := t.now()
				it, err := s.ral.QueryStreamContext(ctx, conn, parts.Fields, parts.Tables, parts.Where)
				t.addBackend(tb)
				if err != nil {
					return nil, err
				}
				s.stats.RAL.Add(1)
				deps := make([]qcache.Dep, len(plan.Tables))
				for i, t := range plan.Tables {
					deps[i] = qcache.Dep{Source: parts.Source, Table: t}
				}
				return s.wrapStream(it, RoutePOOLRAL, 1, key, deps, epoch), nil
			}
		}
	}
	if plan.Pushdown {
		t.setClass(classUnityPush)
	} else {
		t.setClass(classUnityDecomp)
	}
	s.obs.log(ctx, slog.LevelDebug, "route: unity (stream)",
		slog.Bool("pushdown", plan.Pushdown), slog.Int("tables", len(plan.Tables)))
	tb := t.now()
	it, ex, err := s.fed.ExecuteStreamOp(ctx, plan, params...)
	t.addBackend(tb)
	if err != nil {
		return nil, err
	}
	if !plan.Pushdown {
		if ex.Operator == "scratch" {
			s.obs.streamScratch.Inc()
		} else {
			s.obs.streamPipelined.Inc()
		}
		s.obs.log(ctx, slog.LevelDebug, "stream: operator",
			slog.String("operator", ex.Operator), slog.String("fallback", ex.Fallback))
	}
	t.noteStreamExec(ex)
	s.stats.Unity.Add(1)
	return s.wrapStream(it, RouteUnity, 1, key, planDeps(plan), epoch), nil
}

// wrapStream builds the StreamResult for an incremental producer (local
// backend or cursor relay), inserting the cache-fill tee when the cache
// can possibly admit the result. epoch is the invalidation epoch
// snapshotted before the producer started.
func (s *Service) wrapStream(it sqlengine.RowIter, route Route, servers int, key string, deps []qcache.Dep, epoch int64) *StreamResult {
	sr := &StreamResult{cols: it.Columns(), Route: route, Servers: servers, iter: it}
	if s.cache == nil {
		return sr
	}
	limit := s.cache.MaxEntryBytes()
	if limit <= 0 {
		// No byte budget configured: a streamed result may be arbitrarily
		// large, and buffering it for the cache would defeat streaming.
		return sr
	}
	sr.iter = &cacheFillIter{
		inner:   it,
		svc:     s,
		key:     key,
		deps:    deps,
		route:   route,
		servers: servers,
		epoch:   epoch,
		limit:   limit,
		acc:     &sqlengine.ResultSet{Columns: it.Columns()},
	}
	return sr
}

// streamCacheFill inserts an already-materialized streaming answer into
// the cache under the same pre-execution epoch discipline as the
// incremental tee.
func (s *Service) streamCacheFill(key string, qr *QueryResult, deps []qcache.Dep, epoch int64) {
	if s.cache == nil {
		return
	}
	s.cache.PutChecked(key, qr, deps, epoch)
}

// cacheFillIter tees a live stream into a bounded buffer: if the stream
// completes while the accumulated copy is still under the cache's
// admission cap, the copy is inserted (epoch-checked, so an invalidation
// racing the scan wins); the moment the copy outgrows the cap it is
// dropped and the stream continues uncached. The consumer's view of the
// rows is unaffected either way.
type cacheFillIter struct {
	inner   sqlengine.RowIter
	svc     *Service
	key     string
	deps    []qcache.Dep
	route   Route
	servers int
	epoch   int64
	limit   int64
	acc     *sqlengine.ResultSet // nil once the copy is abandoned
	bytes   int64
	done    bool
}

func (it *cacheFillIter) Columns() []string { return it.inner.Columns() }

func (it *cacheFillIter) Next() (sqlengine.Row, error) {
	row, err := it.inner.Next()
	if err == io.EOF {
		if it.acc != nil && !it.done {
			it.done = true
			qr := &QueryResult{ResultSet: it.acc, Route: it.route, Servers: it.servers}
			it.svc.cache.PutChecked(it.key, qr, it.deps, it.epoch)
		}
		return nil, io.EOF
	}
	if err != nil {
		it.acc = nil
		return nil, err
	}
	if it.acc != nil {
		it.bytes += rowBytes(row)
		if it.bytes > it.limit {
			it.acc = nil // over the admission cap: stop copying
		} else {
			it.acc.Rows = append(it.acc.Rows, row)
		}
	}
	return row, nil
}

func (it *cacheFillIter) Close() error { return it.inner.Close() }

// rowBytes estimates one row's resident size (see ResultSetBytes).
func rowBytes(row sqlengine.Row) int64 {
	n := sliceHdrBytes + int64(len(row))*valueBytes
	for _, v := range row {
		n += int64(len(v.Str)) + int64(len(v.Bytes))
	}
	return n
}
