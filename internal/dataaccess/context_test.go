package dataaccess

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/leaktest"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// ---- a deliberately slow database/sql driver ----

// slowDriver backs a source whose every query blocks for delay (default:
// effectively forever) unless its context is cancelled first. started and
// cancelled let tests observe that a query reached the backend and that
// cancellation actually propagated there.
type slowDriver struct {
	delay     time.Duration
	started   chan struct{}
	cancelled chan struct{}
	queries   atomic.Int64
}

func newSlowDriver(delay time.Duration) *slowDriver {
	return &slowDriver{
		delay:     delay,
		started:   make(chan struct{}, 64),
		cancelled: make(chan struct{}, 64),
	}
}

func (d *slowDriver) Open(string) (driver.Conn, error) { return &slowConn{d: d}, nil }

type slowConn struct{ d *slowDriver }

func (c *slowConn) Prepare(string) (driver.Stmt, error) {
	return nil, errors.New("slowdrv: prepare unsupported")
}
func (c *slowConn) Close() error              { return nil }
func (c *slowConn) Begin() (driver.Tx, error) { return nil, errors.New("slowdrv: no transactions") }

func (c *slowConn) QueryContext(ctx context.Context, _ string, _ []driver.NamedValue) (driver.Rows, error) {
	c.d.queries.Add(1)
	select {
	case c.d.started <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		select {
		case c.d.cancelled <- struct{}{}:
		default:
		}
		return nil, ctx.Err()
	case <-time.After(c.d.delay):
		return &slowRows{}, nil
	}
}

type slowRows struct{ served bool }

func (r *slowRows) Columns() []string { return []string{"a"} }
func (r *slowRows) Close() error      { return nil }
func (r *slowRows) Next(dest []driver.Value) error {
	if r.served {
		return io.EOF
	}
	r.served = true
	dest[0] = int64(1)
	return nil
}

var slowDriverSeq atomic.Int64

// registerSlowSource registers a fresh slow driver under a unique name
// (database/sql driver registration is global and permanent) and returns
// the driver plus a ready-to-add SourceRef/LowerSpec pair exposing one
// logical table "slow_t"(a INTEGER).
func registerSlowSource(delay time.Duration) (*slowDriver, xspec.SourceRef, *xspec.LowerSpec) {
	d := newSlowDriver(delay)
	name := fmt.Sprintf("slowdrv%d", slowDriverSeq.Add(1))
	sql.Register(name, d)
	ref := xspec.SourceRef{Name: "slow_src_" + name, URL: "slow://" + name, Driver: name}
	spec := &xspec.LowerSpec{
		Name:    ref.Name,
		Dialect: "ansi",
		Tables: []xspec.TableSpec{{
			Name: "slow_t", Logical: "slow_t",
			Columns: []xspec.ColumnSpec{{Name: "a", Logical: "a", Kind: "INTEGER"}},
		}},
	}
	return d, ref, spec
}

// TestQueryContextDeadlineLocal proves the acceptance criterion for the
// Unity route: a query against a deliberately slow source returns
// promptly with a context error when the caller's deadline expires, the
// backend observes the cancellation, and no goroutines leak.
func TestQueryContextDeadlineLocal(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	s := New(Config{Name: "jc-slow"})
	defer s.Close()
	d, ref, spec := registerSlowSource(time.Hour)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := s.QueryContext(ctx, "SELECT a FROM slow_t")
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("query took %s, want prompt return at the ~60ms deadline", elapsed)
	}
	select {
	case <-d.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never observed the cancellation")
	}
	// Close now (the deferred Close becomes a no-op) so the leak check
	// sees only goroutines the abandoned query itself stranded, not the
	// sql.DB pool machinery that lives until Close.
	s.Close()
	checkLeaks()
}

// TestQueryContextCancelMidQuery cancels (rather than times out) the
// caller once the backend has demonstrably started executing.
func TestQueryContextCancelMidQuery(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	s := New(Config{Name: "jc-slow-cancel"})
	defer s.Close()
	d, ref, spec := registerSlowSource(time.Hour)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-d.started
		cancel()
	}()
	_, err := s.QueryContext(ctx, "SELECT a FROM slow_t")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	select {
	case <-d.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never observed the cancellation")
	}
	s.Close()
	checkLeaks()
}

// TestQueryContextRALRoute proves the POOL-RAL route rejects work under an
// already-dead context: the sql.Conn checkout observes ctx before any
// statement runs.
func TestQueryContextRALRoute(t *testing.T) {
	s := New(Config{Name: "jc-ral-ctx"})
	defer s.Close()
	_, mySpec := mkMart(t, "mart_ctx_my", sqlengine.DialectMySQL, "events", 8)
	addMart(t, s, "mart_ctx_my", mySpec, "gridsql-mysql")

	// Sanity: the live-context form of this query takes the RAL route.
	qr, err := s.Query("SELECT event_id FROM events WHERE run = 101")
	if err != nil || qr.Route != RoutePOOLRAL {
		t.Fatalf("warmup: route=%v err=%v, want pool-ral", qr.Route, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, "SELECT event_id FROM events WHERE run = 100"); !errors.Is(err, context.Canceled) {
		t.Fatalf("RAL route err = %v, want canceled", err)
	}
}

// TestQueryContextRemoteForward runs the full edge-to-backend chain: jc1
// forwards to jc2 (found via the RLS), jc2's backend is slow, and jc1's
// caller gives up. The forward HTTP request must abort promptly, and jc2
// — seeing the disconnect — must cancel its own backend query.
func TestQueryContextRemoteForward(t *testing.T) {
	checkLeaks := leaktest.Check(t)
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer catalog.Close()

	mk := func(name string) (*Service, *clarens.Server) {
		svc := New(Config{Name: name, RLS: rls.NewClient(rlsURL)})
		srv := clarens.NewServer(true)
		svc.RegisterMethods(srv)
		url, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc.SetURL(url)
		t.Cleanup(func() { srv.Close(); svc.Close() })
		return svc, srv
	}
	jc1, srv1 := mk("jc1-fwd")
	jc2, srv2 := mk("jc2-fwd")

	d, ref, spec := registerSlowSource(time.Hour)
	if err := jc2.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = jc1.QueryContext(ctx, "SELECT a FROM slow_t")
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("forwarded query took %s, want prompt return", elapsed)
	}
	// The remote server saw the disconnect and cancelled its backend.
	select {
	case <-d.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("remote backend never observed the cancellation")
	}
	// Tear everything down (the registered cleanups become no-ops), then
	// flush keep-alive conns so only genuine leaks remain.
	srv1.Close()
	srv2.Close()
	jc1.Close()
	jc2.Close()
	catalog.Close()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	checkLeaks()
}

// TestCacheFollowerAbandon proves the qcache singleflight semantics at the
// service level: one follower abandoning a coalesced wait neither
// cancels the leader's computation nor corrupts the cached result.
func TestCacheFollowerAbandon(t *testing.T) {
	s := New(Config{Name: "jc-cache-ctx", CacheSize: 32})
	defer s.Close()
	d, ref, spec := registerSlowSource(300 * time.Millisecond)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.QueryContext(context.Background(), "SELECT a FROM slow_t")
		leaderDone <- err
	}()
	<-d.started // the leader's computation is executing

	// A follower joins the same query, then gives up almost immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.QueryContext(ctx, "SELECT a FROM slow_t"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want deadline exceeded", err)
	}

	// The leader must complete unharmed and populate the cache.
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v (follower abandonment must not cancel the shared computation)", err)
	}
	queriesBefore := d.queries.Load()
	qr, err := s.Query("SELECT a FROM slow_t")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0].Int != 1 {
		t.Fatalf("cached rows: %v", qr.Rows)
	}
	if d.queries.Load() != queriesBefore {
		t.Fatal("repeat query hit the backend; leader result was not cached")
	}
}

// TestCacheLastWaiterCancelsComputation: when every caller has abandoned a
// coalesced query, the shared computation itself is cancelled so the slow
// backend is not left doing unwanted work.
func TestCacheLastWaiterCancelsComputation(t *testing.T) {
	s := New(Config{Name: "jc-cache-last", CacheSize: 32})
	defer s.Close()
	d, ref, spec := registerSlowSource(time.Hour)
	if err := s.AddDatabase(ref, spec, "", ""); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-d.started
		cancel()
	}()
	if _, err := s.QueryContext(ctx, "SELECT a FROM slow_t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	select {
	case <-d.cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned computation was never cancelled at the backend")
	}
}

// TestExecuteContextPlanReuse: a plan from Federation().PlanQuery can be
// executed repeatedly through the service with per-execution contexts.
func TestExecuteContextPlanReuse(t *testing.T) {
	s := New(Config{Name: "jc-plan"})
	defer s.Close()
	_, spec := mkMart(t, "mart_plan", sqlengine.DialectMySQL, "events", 6)
	addMart(t, s, "mart_plan", spec, "gridsql-mysql")

	plan, err := s.Federation().PlanQuery("SELECT event_id FROM events WHERE run = ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []int64{101, 102} {
		qr, err := s.ExecuteContext(context.Background(), plan, sqlengine.NewInt(run))
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if qr.Route != RouteUnity {
			t.Fatalf("route = %s", qr.Route)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecuteContext(ctx, plan, sqlengine.NewInt(101)); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-ctx execute err = %v, want canceled", err)
	}
}
