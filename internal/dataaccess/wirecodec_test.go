package dataaccess

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqlengine"
)

// allKindsRows exercises every sqlengine.Value kind, including edge
// payloads (empty string/bytes, negative and extreme numbers, sub-second
// timestamps).
func allKindsRows() []sqlengine.Row {
	return []sqlengine.Row{
		{
			sqlengine.Null(),
			sqlengine.NewInt(0),
			sqlengine.NewInt(-1),
			sqlengine.NewInt(math.MaxInt64),
			sqlengine.NewInt(math.MinInt64),
		},
		{
			sqlengine.NewFloat(0),
			sqlengine.NewFloat(-2.718281828),
			sqlengine.NewFloat(math.MaxFloat64),
			sqlengine.NewFloat(math.SmallestNonzeroFloat64),
			sqlengine.NewFloat(math.Inf(-1)),
		},
		{
			sqlengine.NewString(""),
			sqlengine.NewString("plain"),
			sqlengine.NewString("<&> \"esc\"\r\n\tütf✓"),
			sqlengine.NewBool(true),
			sqlengine.NewBool(false),
		},
		{
			sqlengine.NewTime(time.Date(2005, 6, 15, 12, 30, 45, 123456789, time.UTC)),
			sqlengine.NewTime(time.Unix(0, 0).UTC()),
			sqlengine.NewBytes(nil),
			sqlengine.NewBytes([]byte{0, 1, 2, 254, 255}),
			sqlengine.Null(),
		},
		{}, // empty row
	}
}

// TestBinaryRowsRoundTripAllKinds: the binary framing is lossless across
// every value kind, including nanosecond time precision the XML dateTime
// cannot carry.
func TestBinaryRowsRoundTripAllKinds(t *testing.T) {
	rows := allKindsRows()
	frame := EncodeRowsBinary(rows)
	back, err := DecodeRowsBinary(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(back), len(rows))
	}
	for i := range rows {
		if len(back[i]) != len(rows[i]) {
			t.Fatalf("row %d has %d cells, want %d", i, len(back[i]), len(rows[i]))
		}
		for j := range rows[i] {
			want, got := rows[i][j], back[i][j]
			if want.Kind != got.Kind {
				t.Fatalf("row %d cell %d kind = %v, want %v", i, j, got.Kind, want.Kind)
			}
			if want.Kind == sqlengine.KindTime {
				if !want.Time.Equal(got.Time) {
					t.Fatalf("row %d cell %d time = %v, want %v", i, j, got.Time, want.Time)
				}
				continue
			}
			if !reflect.DeepEqual(normBytes(want), normBytes(got)) {
				t.Fatalf("row %d cell %d = %#v, want %#v", i, j, got, want)
			}
		}
	}
}

// normBytes maps nil and empty byte slices together (the frame cannot
// distinguish them and SQL semantics do not either).
func normBytes(v sqlengine.Value) sqlengine.Value {
	if v.Kind == sqlengine.KindBytes && len(v.Bytes) == 0 {
		v.Bytes = nil
	}
	return v
}

// TestBinaryRowsProperty: randomized round-trip over generated cells.
func TestBinaryRowsProperty(t *testing.T) {
	f := func(ints []int64, floats []float64, strs []string, blobs [][]byte, secs int64, nsec uint32) bool {
		row := sqlengine.Row{}
		for _, v := range ints {
			row = append(row, sqlengine.NewInt(v))
		}
		for _, v := range floats {
			if v != v {
				continue // NaN != NaN; compared separately below
			}
			row = append(row, sqlengine.NewFloat(v))
		}
		for _, v := range strs {
			row = append(row, sqlengine.NewString(v))
		}
		for _, v := range blobs {
			row = append(row, sqlengine.NewBytes(v))
		}
		row = append(row, sqlengine.NewTime(time.Unix(secs%1<<40, int64(nsec%1e9)).UTC()))
		rows := []sqlengine.Row{row, {}}
		back, err := DecodeRowsBinary(EncodeRowsBinary(rows))
		if err != nil {
			return false
		}
		if len(back) != 2 || len(back[0]) != len(row) {
			return false
		}
		for j := range row {
			w, g := normBytes(row[j]), normBytes(back[0][j])
			if w.Kind == sqlengine.KindTime {
				if !w.Time.Equal(g.Time) {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(w, g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBinaryRowsMalformed: truncations and garbage are loud protocol
// errors, never silent short results.
func TestBinaryRowsMalformed(t *testing.T) {
	frame := EncodeRowsBinary(allKindsRows())
	if _, err := DecodeRowsBinary(nil); err == nil {
		t.Error("empty frame decoded")
	}
	if _, err := DecodeRowsBinary([]byte{'X', 1, 0}); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := DecodeRowsBinary([]byte{'R', 99, 0}); err == nil {
		t.Error("future version decoded")
	}
	for cut := 1; cut < len(frame); cut += 7 {
		if _, err := DecodeRowsBinary(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded silently", cut)
		}
	}
	// A frame claiming absurd row counts must be rejected before
	// allocation, not OOM.
	if _, err := DecodeRowsBinary([]byte{'R', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Error("absurd row count decoded")
	}
}

// TestWireResultMatchesBoxed: the zero-boxing XML payload renders byte-
// identically to the boxed EncodeResult path (struct members sorted on
// both), so third-party decoders cannot tell them apart.
func TestWireResultMatchesBoxed(t *testing.T) {
	rs := &sqlengine.ResultSet{
		Columns: []string{"a", "b", "c"},
		Rows: []sqlengine.Row{
			{sqlengine.NewInt(1), sqlengine.NewString("x<&>"), sqlengine.NewFloat(2.5)},
			{sqlengine.Null(), sqlengine.NewBool(true), sqlengine.NewBytes([]byte{1, 2})},
			{sqlengine.NewTime(time.Date(2005, 6, 15, 12, 0, 0, 0, time.UTC)), sqlengine.NewInt(-7), sqlengine.NewString("")},
		},
	}
	fast, err := clarens.MarshalResponse(WireResult(rs))
	if err != nil {
		t.Fatal(err)
	}
	boxed, err := clarens.MarshalResponse(EncodeResult(rs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast, boxed) {
		t.Fatalf("wire documents differ:\n fast:  %s\n boxed: %s", fast, boxed)
	}

	// And the streaming decoder reads the document back into the same
	// result set the boxed decoder produces.
	v, err := clarens.UnmarshalResponse(boxed)
	if err != nil {
		t.Fatal(err)
	}
	viaBoxed, err := DecodeResult(v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := clarens.DecodeResponse(bytes.NewReader(fast), func(d *clarens.Decoder) (interface{}, error) {
		return DecodeResultFrom(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	viaStream := res.(*sqlengine.ResultSet)
	if !reflect.DeepEqual(viaBoxed.Columns, viaStream.Columns) {
		t.Fatalf("columns: %v vs %v", viaBoxed.Columns, viaStream.Columns)
	}
	if !reflect.DeepEqual(viaBoxed.Rows, viaStream.Rows) {
		t.Fatalf("rows:\n boxed:  %#v\n stream: %#v", viaBoxed.Rows, viaStream.Rows)
	}
}

// binDeployment is twoServerDeployment with per-side control of the
// binary row codec.
func binDeployment(t *testing.T, jc1Bin, jc2Bin bool) (*Service, *Service) {
	t.Helper()
	catalog := rls.NewServer(0)
	rlsURL, err := catalog.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { catalog.Close() })

	mk := func(name string, bin bool) *Service {
		svc := New(Config{Name: name, RLS: rls.NewClient(rlsURL), DisableBinRows: !bin})
		srv := clarens.NewServer(true)
		svc.RegisterMethods(srv)
		url, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		svc.SetURL(url)
		t.Cleanup(func() { srv.Close(); svc.Close() })
		return svc
	}
	jc1 := mk("jc1", jc1Bin)
	jc2 := mk("jc2", jc2Bin)

	_, evSpec := mkMart(t, "b_events", sqlengine.DialectMySQL, "events", 12)
	addMart(t, jc1, "b_events", evSpec, "gridsql-mysql")
	_, runSpec := mkMart(t, "b_runs", sqlengine.DialectMSSQL, "runsinfo", 6)
	addMart(t, jc2, "b_runs", runSpec, "gridsql-mssql")
	return jc1, jc2
}

// TestForwardNegotiatesBinary: with both sides speaking the codec, a
// remote forward uses the binary framing and returns the same rows.
func TestForwardNegotiatesBinary(t *testing.T) {
	jc1, _ := binDeployment(t, true, true)
	qr, err := jc1.Query("SELECT event_id, e_tot FROM runsinfo WHERE run = 101 ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteRemote || len(qr.Rows) != 3 {
		t.Fatalf("route=%s rows=%d", qr.Route, len(qr.Rows))
	}
	if got := jc1.Stats().BinForwards.Load(); got != 1 {
		t.Errorf("BinForwards = %d, want 1", got)
	}
	// Second forward reuses the negotiated peer without re-probing.
	if _, err := jc1.Query("SELECT event_id FROM runsinfo"); err != nil {
		t.Fatal(err)
	}
	if got := jc1.Stats().BinForwards.Load(); got != 2 {
		t.Errorf("BinForwards after second query = %d, want 2", got)
	}
}

// TestForwardFallsBackToPlainXML: a peer without the codec (third-party
// server, older build) answers over plain XML-RPC transparently.
func TestForwardFallsBackToPlainXML(t *testing.T) {
	jc1, _ := binDeployment(t, true, false)
	qr, err := jc1.Query("SELECT event_id, e_tot FROM runsinfo WHERE run = 101 ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Route != RouteRemote || len(qr.Rows) != 3 {
		t.Fatalf("route=%s rows=%d", qr.Route, len(qr.Rows))
	}
	if got := jc1.Stats().BinForwards.Load(); got != 0 {
		t.Errorf("BinForwards = %d, want 0 (peer has no codec)", got)
	}

	// And a sender with the codec disabled never probes at all.
	jc1b, _ := binDeployment(t, false, true)
	if _, err := jc1b.Query("SELECT event_id FROM runsinfo"); err != nil {
		t.Fatal(err)
	}
	if got := jc1b.Stats().BinForwards.Load(); got != 0 {
		t.Errorf("BinForwards with DisableBinRows = %d, want 0", got)
	}
}

// TestForwardResultsIdenticalAcrossFramings: the same remote query through
// binary and XML framing produces identical rows.
func TestForwardResultsIdenticalAcrossFramings(t *testing.T) {
	const q = "SELECT event_id, run, e_tot FROM runsinfo ORDER BY event_id"
	jc1, _ := binDeployment(t, true, true)
	bin, err := jc1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	jc1x, _ := binDeployment(t, false, false)
	xml, err := jc1x.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bin.Rows, xml.Rows) || !reflect.DeepEqual(bin.Columns, xml.Columns) {
		t.Fatalf("framings disagree:\n bin: %#v\n xml: %#v", bin.ResultSet, xml.ResultSet)
	}
}

// TestQuerybAndFetchbEndToEnd drives the negotiated methods the way a
// peer server does: queryb for full results, cursor open + fetchb for
// paged streams, both decoded streaming off the wire.
func TestQuerybAndFetchbEndToEnd(t *testing.T) {
	_, jc2 := binDeployment(t, true, true)
	c := clarens.NewClient(jc2.cfg.URL)

	// Capability handshake.
	caps, err := c.Call("system.capabilities")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := caps.(map[string]interface{})["rowcodec"].(int64); v < RowCodecVersion {
		t.Fatalf("capabilities = %v", caps)
	}

	res, err := c.CallDecodeContext(context.Background(), "dataaccess.queryb",
		func(d *clarens.Decoder) (interface{}, error) { return DecodeResultFrom(d) },
		"SELECT event_id, e_tot FROM runsinfo ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	rs := res.(*sqlengine.ResultSet)
	if len(rs.Rows) != 6 || rs.Rows[0][0].Int != 1 {
		t.Fatalf("queryb rows: %v", rs.Rows)
	}

	// Cursor + binary fetch.
	open, err := c.Call("system.cursor.open", "SELECT event_id FROM runsinfo ORDER BY event_id")
	if err != nil {
		t.Fatal(err)
	}
	id := open.(map[string]interface{})["cursor"].(string)
	var got []int64
	for {
		res, err := c.CallDecodeContext(context.Background(), "system.cursor.fetchb",
			func(d *clarens.Decoder) (interface{}, error) { return DecodeChunkFrom(d) },
			id, int64(2))
		if err != nil {
			t.Fatal(err)
		}
		chunk := res.(*Chunk)
		for _, row := range chunk.Rows {
			got = append(got, row[0].Int)
		}
		if chunk.Done {
			break
		}
	}
	if len(got) != 6 || got[0] != 1 || got[5] != 6 {
		t.Fatalf("fetchb streamed %v", got)
	}
	if _, err := c.Call("system.cursor.close", id); err != nil {
		t.Fatal(err)
	}
}

// TestForwardEmptyResponse: a peer answering with an empty methodResponse
// (no result value) is a descriptive error, not a nil-assertion panic.
func TestForwardEmptyResponse(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/xml")
		io.WriteString(w, "<methodResponse></methodResponse>")
	}))
	defer srv.Close()
	s := New(Config{Name: "empty-test", DisableBinRows: true})
	defer s.Close()
	_, err := s.forward(context.Background(), srv.URL, "SELECT 1")
	if err == nil || !strings.Contains(err.Error(), "empty response") {
		t.Fatalf("err = %v, want empty-response error", err)
	}
}

// TestCursorStatsMethod: the system.cursorstats surface reports opens,
// fetches, streamed rows and reaps.
func TestCursorStatsMethod(t *testing.T) {
	_, jc2 := binDeployment(t, true, true)
	c := clarens.NewClient(jc2.cfg.URL)

	open, err := c.Call("system.cursor.open", "SELECT event_id FROM runsinfo")
	if err != nil {
		t.Fatal(err)
	}
	id := open.(map[string]interface{})["cursor"].(string)
	if _, err := c.Call("system.cursor.fetch", id, int64(4)); err != nil {
		t.Fatal(err)
	}

	res, err := c.Call("system.cursorstats")
	if err != nil {
		t.Fatal(err)
	}
	st := res.(map[string]interface{})
	if st["open"].(int64) != 1 || st["opened"].(int64) != 1 {
		t.Errorf("open/opened = %v/%v", st["open"], st["opened"])
	}
	if st["fetches"].(int64) != 1 || st["rows"].(int64) != 4 {
		t.Errorf("fetches/rows = %v/%v", st["fetches"], st["rows"])
	}
	if _, err := c.Call("system.cursor.close", id); err != nil {
		t.Fatal(err)
	}
	res, err = c.Call("system.cursorstats")
	if err != nil {
		t.Fatal(err)
	}
	if open := res.(map[string]interface{})["open"].(int64); open != 0 {
		t.Errorf("open after close = %d", open)
	}
}
