package dataaccess

import (
	"sync"
	"time"
)

// Heartbeat periodically republishes this instance's hosted tables to the
// RLS so soft-state registrations never expire while the server is alive
// (Globus RLS-style renewal; crashed servers age out after the catalog
// TTL).
type Heartbeat struct {
	svc      *Service
	interval time.Duration
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	renewals int64
	lastErr  error
}

// NewHeartbeat creates a renewal loop; choose interval well below the RLS
// server's TTL (e.g. TTL/3).
func NewHeartbeat(svc *Service, interval time.Duration) *Heartbeat {
	return &Heartbeat{svc: svc, interval: interval, stop: make(chan struct{})}
}

// Start launches the renewal loop; a no-op when interval <= 0.
func (h *Heartbeat) Start() {
	if h.interval <= 0 {
		return
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		ticker := time.NewTicker(h.interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
				h.RenewNow()
			}
		}
	}()
}

// RenewNow republishes immediately and records the outcome.
func (h *Heartbeat) RenewNow() error {
	err := h.svc.PublishAll()
	h.mu.Lock()
	h.renewals++
	h.lastErr = err
	h.mu.Unlock()
	return err
}

// Stats reports (renewals performed, last error).
func (h *Heartbeat) Stats() (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.renewals, h.lastErr
}

// Stop halts the loop.
func (h *Heartbeat) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.wg.Wait()
}
