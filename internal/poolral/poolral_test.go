package poolral

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"gridrdb/internal/sqldriver"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/wire"
)

func localOracle(t *testing.T, name string) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.NewEngine(name, sqlengine.DialectOracle)
	err := e.ExecScript(`CREATE TABLE "ev" ("id" NUMBER PRIMARY KEY, "run" NUMBER, "e" BINARY_DOUBLE);` +
		`INSERT INTO "ev" VALUES (1, 100, 5.5), (2, 100, 6.5), (3, 101, NULL);` +
		`CREATE TABLE "runs" ("run" NUMBER PRIMARY KEY, "det" VARCHAR2(8));` +
		`INSERT INTO "runs" VALUES (100, 'CMS'), (101, 'ATLAS')`)
	if err != nil {
		t.Fatal(err)
	}
	sqldriver.RegisterEngine(e)
	t.Cleanup(func() { sqldriver.UnregisterEngine(name) })
	return e
}

func TestInitAndQuery(t *testing.T) {
	localOracle(t, "whora")
	r := New()
	defer r.Close()
	conn := "oracle:local://whora"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-init.
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	if got := r.Handles(); len(got) != 1 {
		t.Fatalf("handles = %v", got)
	}
	rows, err := r.Query(conn, []string{"id", "e"}, []string{"ev"}, `"run" = 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "1" || rows[0][1] != "5.5" {
		t.Fatalf("rows = %v", rows)
	}
	// NULL renders as empty string in the 2-D array form.
	rows, err = r.Query(conn, []string{"e"}, []string{"ev"}, `"run" = 101`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "" {
		t.Fatalf("NULL rendered as %q", rows[0][0])
	}
}

func TestQueryValuesTyped(t *testing.T) {
	localOracle(t, "whora")
	r := New()
	defer r.Close()
	conn := "oracle:local://whora"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	rs, err := r.QueryValues(conn, []string{"id"}, []string{"ev"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 || rs.Rows[0][0].Kind != sqlengine.KindInt {
		t.Fatalf("typed rows: %v", rs.Rows)
	}
	if rs.Columns[0] != "id" {
		t.Errorf("columns: %v", rs.Columns)
	}
}

func TestJoinWithinOneDatabase(t *testing.T) {
	localOracle(t, "whora")
	r := New()
	defer r.Close()
	conn := "oracle:local://whora"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	// POOL allows multi-table access *within one database*.
	rows, err := r.Query(conn, []string{"ev.id", "runs.det"}, []string{"ev", "runs"}, `"ev"."run" = "runs"."run" AND "runs"."det" = 'CMS'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("join rows = %v", rows)
	}
}

func TestUnsupportedVendorRejected(t *testing.T) {
	r := New()
	defer r.Close()
	// MS-SQL is the paper's canonical non-POOL vendor.
	err := r.InitHandler("mssql:local://anything", "", "")
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("mssql accepted by POOL-RAL: %v", err)
	}
	if Supported("mssql") {
		t.Error("Supported(mssql) = true")
	}
	for _, v := range []string{"oracle", "mysql", "sqlite"} {
		if !Supported(v) {
			t.Errorf("Supported(%s) = false", v)
		}
	}
}

func TestQueryWithoutInit(t *testing.T) {
	r := New()
	if _, err := r.Query("oracle:local://never", nil, []string{"t"}, ""); err == nil {
		t.Fatal("query on uninitialized handle accepted")
	}
}

func TestMalformedConnString(t *testing.T) {
	r := New()
	for _, cs := range []string{"", "nocolon", ":empty-vendor"} {
		if err := r.InitHandler(cs, "", ""); err == nil {
			t.Errorf("conn string %q accepted", cs)
		}
	}
}

func TestRemoteWithCredentials(t *testing.T) {
	e := sqlengine.NewEngine("remoteora", sqlengine.DialectOracle)
	e.AddUser("pool", "pw")
	if err := e.ExecScript(`CREATE TABLE "t" ("a" NUMBER); INSERT INTO "t" VALUES (9)`); err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(nil)
	srv.AddEngine(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := New()
	defer r.Close()
	conn := "oracle:tcp://" + addr + "/remoteora"
	if err := r.InitHandler(conn, "pool", "pw"); err != nil {
		t.Fatal(err)
	}
	rows, err := r.Query(conn, []string{"a"}, []string{"t"}, "")
	if err != nil || len(rows) != 1 || rows[0][0] != "9" {
		t.Fatalf("remote query: %v %v", rows, err)
	}
	// Wrong password fails at init.
	r2 := New()
	defer r2.Close()
	if err := r2.InitHandler("oracle:tcp://"+addr+"/remoteora", "pool", "wrong"); err == nil {
		t.Fatal("bad credentials accepted")
	}
}

func TestBuildSelect(t *testing.T) {
	sqlText, err := buildSelect(sqlengine.DialectOracle, []string{"a", "t.b", "*"}, []string{"t"}, "a > 1")
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT "a", "t"."b", * FROM "t" WHERE a > 1`
	if sqlText != want {
		t.Errorf("got %q, want %q", sqlText, want)
	}
	if _, err := buildSelect(sqlengine.DialectOracle, nil, nil, ""); err == nil {
		t.Error("no tables accepted")
	}
}

func TestQueryValuesContextCancelled(t *testing.T) {
	localOracle(t, "whoractx")
	r := New()
	defer r.Close()
	conn := "oracle:local://whoractx"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.QueryValuesContext(ctx, conn, []string{"id"}, []string{"ev"}, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	// A live context still works on the same handle afterwards.
	rs, err := r.QueryValuesContext(context.Background(), conn, []string{"id"}, []string{"ev"}, `"run" = 100`)
	if err != nil || len(rs.Rows) != 2 {
		t.Fatalf("post-cancel query: %v rows=%d", err, len(rs.Rows))
	}
}

// TestQueryStream: the incremental RAL path yields the same rows as the
// materializing one, respects io.EOF termination, and double-Close is
// safe.
func TestQueryStream(t *testing.T) {
	localOracle(t, "whora_stream")
	r := New()
	defer r.Close()
	conn := "oracle:local://whora_stream"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	it, err := r.QueryStreamContext(context.Background(), conn, []string{"id", "e"}, []string{"ev"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if cols := it.Columns(); len(cols) != 2 {
		t.Fatalf("columns = %v", cols)
	}
	n := 0
	for {
		row, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != 2 {
			t.Fatalf("row = %v", row)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d rows, want 3", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal("double close:", err)
	}

	// Equivalence with the materializing path.
	rs, err := r.QueryValuesContext(context.Background(), conn, []string{"id", "e"}, []string{"ev"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("materialized rows = %d", len(rs.Rows))
	}
}

// TestQueryStreamDeadContext: a cancelled context is rejected before any
// connection is pinned.
func TestQueryStreamDeadContext(t *testing.T) {
	localOracle(t, "whora_streamdead")
	r := New()
	defer r.Close()
	conn := "oracle:local://whora_streamdead"
	if err := r.InitHandler(conn, "", ""); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.QueryStreamContext(ctx, conn, nil, []string{"ev"}, ""); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}
