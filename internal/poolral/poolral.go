// Package poolral reimplements the paper's POOL Relational Abstraction
// Layer wrapper (§4.7). The original was a C++ library reached over JNI
// exposing exactly two methods: one that initializes a service handler for
// a database given a connection string, username and password (keeping a
// list of initialized handles), and one that takes a connection string, an
// array of select fields, an array of table names and a WHERE clause and
// returns a 2-D array with the query result. This package preserves that
// surface, including POOL's two defining restrictions that motivated the
// paper's Unity path: a query addresses tables within *one* database at a
// time, and only POOL-supported vendors (Oracle, MySQL, SQLite — not
// MS-SQL) are reachable.
package poolral

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"gridrdb/internal/sqlengine"
)

// Connection strings have the form "<vendor>:<dsn>", e.g.
// "oracle:local://warehouse" or "mysql:tcp://host:port/tier2db". The
// vendor selects the dialect-checked driver, mimicking POOL's
// technology-prefixed contact strings.

// supportedVendors lists the RDBMS technologies POOL-RAL supports. MS-SQL
// is deliberately absent (the paper routes it through the JDBC/Unity
// path).
var supportedVendors = map[string]bool{
	"oracle": true,
	"mysql":  true,
	"sqlite": true,
}

// Supported reports whether the RAL can talk to a vendor.
func Supported(vendor string) bool { return supportedVendors[strings.ToLower(vendor)] }

// SupportedVendors returns the vendor list (sorted).
func SupportedVendors() []string { return []string{"mysql", "oracle", "sqlite"} }

// handle is one initialized database service handler.
type handle struct {
	db      *sql.DB
	dialect *sqlengine.Dialect
}

// RAL is the relational abstraction layer: a registry of initialized
// handles keyed by connection string. Safe for concurrent use.
type RAL struct {
	mu      sync.RWMutex
	handles map[string]*handle
}

// New returns an empty RAL.
func New() *RAL { return &RAL{handles: make(map[string]*handle)} }

// splitConn splits "<vendor>:<dsn>".
func splitConn(connString string) (vendor, dsn string, err error) {
	i := strings.Index(connString, ":")
	if i <= 0 {
		return "", "", fmt.Errorf("poolral: malformed connection string %q (want vendor:dsn)", connString)
	}
	return strings.ToLower(connString[:i]), connString[i+1:], nil
}

// InitHandler initializes a service handler for a new database using a
// connection string, a username and a password, and adds it to the list of
// previously initialized handles (method 1 of the JNI wrapper). Calling it
// again for the same connection string is a no-op.
func (r *RAL) InitHandler(connString, user, password string) error {
	vendor, dsn, err := splitConn(connString)
	if err != nil {
		return err
	}
	if !Supported(vendor) {
		return fmt.Errorf("poolral: vendor %q is not supported by POOL-RAL (supported: %s)",
			vendor, strings.Join(SupportedVendors(), ", "))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.handles[connString]; ok {
		return nil
	}
	dialect, err := sqlengine.DialectByName(vendor)
	if err != nil {
		return err
	}
	if user != "" && strings.HasPrefix(dsn, "tcp://") {
		dsn = "tcp://" + user + ":" + password + "@" + strings.TrimPrefix(dsn, "tcp://")
	}
	db, err := sql.Open(dialect.DriverName, dsn)
	if err != nil {
		return fmt.Errorf("poolral: open %s: %w", connString, err)
	}
	if err := db.Ping(); err != nil {
		db.Close()
		return fmt.Errorf("poolral: connect %s: %w", connString, err)
	}
	r.handles[connString] = &handle{db: db, dialect: dialect}
	return nil
}

// Handles returns the connection strings of all initialized handles.
func (r *RAL) Handles() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.handles))
	for k := range r.handles {
		out = append(out, k)
	}
	return out
}

func (r *RAL) handle(connString string) (*handle, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.handles[connString]
	if !ok {
		return nil, fmt.Errorf("poolral: no handle initialized for %q", connString)
	}
	return h, nil
}

// quoteField quotes a possibly table-qualified field in the handle's
// dialect; "*" passes through.
func quoteField(d *sqlengine.Dialect, f string) string {
	if f == "*" {
		return f
	}
	parts := strings.Split(f, ".")
	for i, p := range parts {
		if p != "*" {
			parts[i] = d.QuoteIdent(p)
		}
	}
	return strings.Join(parts, ".")
}

// buildSelect renders the RAL query in the target dialect. Multiple tables
// become a comma join (all within the one database, per POOL's model).
func buildSelect(d *sqlengine.Dialect, fields, tables []string, where string) (string, error) {
	if len(tables) == 0 {
		return "", fmt.Errorf("poolral: at least one table is required")
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if len(fields) == 0 {
		sb.WriteString("*")
	} else {
		for i, f := range fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(quoteField(d, f))
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range tables {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.QuoteIdent(t))
	}
	if strings.TrimSpace(where) != "" {
		sb.WriteString(" WHERE ")
		sb.WriteString(where)
	}
	return sb.String(), nil
}

// QueryValues is the typed form of Query: it executes the select described
// by (fields, tables, where) on the database identified by connString and
// returns a materialized result set.
func (r *RAL) QueryValues(connString string, fields, tables []string, where string) (*sqlengine.ResultSet, error) {
	return r.QueryValuesContext(context.Background(), connString, fields, tables, where)
}

// QueryValuesContext is QueryValues under a caller-supplied context. The
// query runs on a dedicated connection checked out from the handle's pool
// (the paper's one-handle-per-database discipline), so cancelling ctx
// interrupts the statement rather than just the row iteration.
func (r *RAL) QueryValuesContext(ctx context.Context, connString string, fields, tables []string, where string) (*sqlengine.ResultSet, error) {
	it, err := r.QueryStreamContext(ctx, connString, fields, tables, where)
	if err != nil {
		return nil, err
	}
	return sqlengine.Drain(it)
}

// QueryStreamContext executes the select described by (fields, tables,
// where) and returns an incremental row iterator instead of a materialized
// result: each Next pulls one row from the backend, so a large scan is
// never buffered whole in this layer. The dedicated connection stays
// checked out until the iterator is closed; cancelling ctx interrupts the
// statement mid-scan.
func (r *RAL) QueryStreamContext(ctx context.Context, connString string, fields, tables []string, where string) (sqlengine.RowIter, error) {
	h, err := r.handle(connString)
	if err != nil {
		return nil, err
	}
	query, err := buildSelect(h.dialect, fields, tables, where)
	if err != nil {
		return nil, err
	}
	conn, err := h.db.Conn(ctx)
	if err != nil {
		return nil, fmt.Errorf("poolral: %s: %w", connString, err)
	}
	rows, err := conn.QueryContext(ctx, query)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("poolral: %s: %w", connString, err)
	}
	cols, err := rows.Columns()
	if err != nil {
		rows.Close()
		conn.Close()
		return nil, fmt.Errorf("poolral: %s: %w", connString, err)
	}
	return &ralRowsIter{conn: connString, rows: rows, release: conn, cols: cols}, nil
}

// ralRowsIter streams a RAL query's rows off its dedicated connection.
type ralRowsIter struct {
	conn    string
	rows    *sql.Rows
	release *sql.Conn
	cols    []string
	closed  bool
}

func (it *ralRowsIter) Columns() []string { return it.cols }

func (it *ralRowsIter) Next() (sqlengine.Row, error) {
	if !it.rows.Next() {
		if err := it.rows.Err(); err != nil {
			return nil, fmt.Errorf("poolral: %s: %w", it.conn, err)
		}
		return nil, io.EOF
	}
	raw := make([]interface{}, len(it.cols))
	ptrs := make([]interface{}, len(it.cols))
	for i := range raw {
		ptrs[i] = &raw[i]
	}
	if err := it.rows.Scan(ptrs...); err != nil {
		return nil, fmt.Errorf("poolral: %s: %w", it.conn, err)
	}
	row := make(sqlengine.Row, len(it.cols))
	for i, x := range raw {
		v, err := goToValue(x)
		if err != nil {
			return nil, fmt.Errorf("poolral: %s: %w", it.conn, err)
		}
		row[i] = v
	}
	return row, nil
}

func (it *ralRowsIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	err := it.rows.Close()
	if cerr := it.release.Close(); err == nil {
		err = cerr
	}
	return err
}

// Query is method 2 of the JNI wrapper: it returns the result as a 2-D
// string array (the paper's "2D array containing the results"), with NULL
// rendered as the empty string.
func (r *RAL) Query(connString string, fields, tables []string, where string) ([][]string, error) {
	rs, err := r.QueryValues(connString, fields, tables, where)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i] = make([]string, len(row))
		for j, v := range row {
			if v.IsNull() {
				out[i][j] = ""
			} else {
				out[i][j] = v.String()
			}
		}
	}
	return out, nil
}

func goToValue(x interface{}) (sqlengine.Value, error) {
	switch v := x.(type) {
	case nil:
		return sqlengine.Null(), nil
	case int64:
		return sqlengine.NewInt(v), nil
	case float64:
		return sqlengine.NewFloat(v), nil
	case string:
		return sqlengine.NewString(v), nil
	case bool:
		return sqlengine.NewBool(v), nil
	case []byte:
		return sqlengine.NewBytes(v), nil
	case time.Time:
		return sqlengine.NewTime(v), nil
	}
	return sqlengine.Null(), fmt.Errorf("poolral: unsupported scan type %T", x)
}

// Close tears down all handles.
func (r *RAL) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for k, h := range r.handles {
		if err := h.db.Close(); err != nil && first == nil {
			first = err
		}
		delete(r.handles, k)
	}
	return first
}
