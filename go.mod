module gridrdb

go 1.24
