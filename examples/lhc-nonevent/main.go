// lhc-nonevent models the paper's motivating workload: LHC *non-event*
// data — detector calibration and conditions records — replicated across
// the tiered computing model (Tier-0 at CERN down to Tier-3 laptops), each
// tier on the database technology the paper names for it: Oracle at
// Tier-0/1, MySQL and MS-SQL at Tier-2/3, SQLite for disconnected laptop
// analysis. A physicist at a Tier-2 site then asks one SQL question that
// transparently spans all of them.
//
// Run with: go run ./examples/lhc-nonevent
package main

import (
	"fmt"
	"log"

	"gridrdb"
)

func main() {
	// --- Tier databases ----------------------------------------------
	// Tier-0 (CERN): the authoritative calibration store, Oracle.
	tier0 := gridrdb.NewEngine("cern_tier0", gridrdb.Oracle)
	mustScript(tier0, `
		CREATE TABLE "calibration" ("calib_id" NUMBER PRIMARY KEY, "subdetector" VARCHAR2(32),
		                            "run" NUMBER, "gain" BINARY_DOUBLE, "pedestal" BINARY_DOUBLE);
		INSERT INTO "calibration" VALUES
			(1, 'ECAL', 100, 1.015, 0.12), (2, 'ECAL', 101, 1.017, 0.11),
			(3, 'HCAL', 100, 0.973, 0.31), (4, 'HCAL', 101, 0.969, 0.33),
			(5, 'TRACKER', 100, 1.002, 0.05), (6, 'TRACKER', 101, 1.004, 0.06)`)

	// Tier-1 (regional center): run conditions, Oracle.
	tier1 := gridrdb.NewEngine("fnal_tier1", gridrdb.Oracle)
	mustScript(tier1, `
		CREATE TABLE "conditions" ("run" NUMBER PRIMARY KEY, "beam_energy" BINARY_DOUBLE,
		                           "magnet_t" BINARY_DOUBLE, "status" VARCHAR2(16));
		INSERT INTO "conditions" VALUES
			(100, 7000, 3.8, 'GOOD'), (101, 7000, 3.8, 'GOOD'), (102, 3500, 0.0, 'COSMIC')`)

	// Tier-2 (university): local luminosity bookkeeping, MySQL.
	tier2 := gridrdb.NewEngine("caltech_tier2", gridrdb.MySQL)
	mustScript(tier2, "CREATE TABLE `lumi` (`run` BIGINT PRIMARY KEY, `delivered_pb` DOUBLE, `recorded_pb` DOUBLE);"+
		"INSERT INTO `lumi` VALUES (100, 12.5, 11.9), (101, 14.2, 13.6), (102, 0.4, 0.4)")

	// Tier-3 (group cluster): analysis bookkeeping, MS-SQL.
	tier3 := gridrdb.NewEngine("group_tier3", gridrdb.MSSQL)
	mustScript(tier3, "CREATE TABLE [datasets] ([run] BIGINT, [name] NVARCHAR(64), [events] BIGINT);"+
		"INSERT INTO [datasets] VALUES (100, '/Higgs/Run100/RECO', 150000), (101, '/Higgs/Run101/RECO', 182000)")

	// --- Grid deployment ----------------------------------------------
	grid := gridrdb.NewGrid()
	defer grid.Close()
	if _, err := grid.StartRLS(""); err != nil {
		log.Fatal(err)
	}
	cern, err := grid.AddServer(gridrdb.ServerConfig{Name: "jclarens-cern", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	campus, err := grid.AddServer(gridrdb.ServerConfig{Name: "jclarens-caltech", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []*gridrdb.Engine{tier0, tier1} {
		if err := cern.AddMart(m); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range []*gridrdb.Engine{tier2, tier3} {
		if err := campus.AddMart(m); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("deployment: CERN hosts calibration+conditions (Oracle), campus hosts lumi (MySQL) + datasets (MS-SQL)")

	// --- One SQL question spanning four databases on two servers ------
	// Asked at the *campus* server: calibration and conditions are not
	// local, so the data access layer resolves them through the RLS and
	// pulls them from the CERN instance.
	qr, err := campus.Query(`
		SELECT c.run, c.subdetector, c.gain, r.beam_energy, l.recorded_pb, d.name
		FROM calibration c
		JOIN conditions r ON c.run = r.run
		JOIN lumi l       ON l.run = c.run
		JOIN datasets d   ON d.run = c.run
		WHERE r.status = 'GOOD' AND c.subdetector = 'ECAL'
		ORDER BY c.run`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nECAL calibrations for good runs, joined across 4 tiers (%s route, %d servers):\n%s",
		qr.Route, qr.Servers, gridrdb.FormatResult(qr.ResultSet))

	// Aggregate across the federation: total recorded luminosity per
	// detector status.
	qr, err = campus.Query(`
		SELECT r.status, COUNT(DISTINCT l.run) AS runs, SUM(l.recorded_pb) AS recorded
		FROM conditions r JOIN lumi l ON r.run = l.run
		GROUP BY r.status ORDER BY r.status`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nluminosity per run status (%s route):\n%s", qr.Route, gridrdb.FormatResult(qr.ResultSet))

	// The same calibration table queried from CERN's own server takes
	// the fast local path (POOL-RAL, since Oracle is POOL-supported).
	qr, err = cern.Query(`SELECT calib_id, subdetector, gain FROM calibration WHERE run = 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame data at CERN goes via the %s route:\n%s", qr.Route, gridrdb.FormatResult(qr.ResultSet))
}

func mustScript(e *gridrdb.Engine, script string) {
	if err := e.ExecScript(script); err != nil {
		log.Fatalf("%s: %v", e.Name(), err)
	}
}
