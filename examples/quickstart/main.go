// Quickstart walks the full pipeline of the paper end to end, in process:
//
//  1. two normalized source databases (Oracle and MySQL dialects) are
//     populated with HBOOK-style ntuple data;
//  2. Stage 1 ETL integrates them into the denormalized star schema of an
//     Oracle warehouse through the staging file;
//  3. Stage 2 materializes per-run warehouse views into data marts of
//     four different vendors;
//  4. a Grid deployment (RLS + two JClarens servers) hosts the marts;
//  5. clients run federated SQL with a single logical view, including a
//     cross-server join.
//
// How these layers fit together — and how streamed queries ride
// server-side cursors and cursor-to-cursor relays across the grid — is
// mapped in docs/ARCHITECTURE.md; the wire protocol a third-party
// client would speak is specified in docs/WIRE.md.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridrdb"
	"gridrdb/internal/ntuple"
	"gridrdb/internal/warehouse"
)

func main() {
	// --- 1. Normalized sources at the tier sites ---------------------
	cfg := ntuple.Config{Name: "higgs", NVar: 6, NEvents: 400, Runs: 4, Seed: 7}
	tier1 := gridrdb.NewEngine("tier1_oracle", gridrdb.Oracle)
	tier2 := gridrdb.NewEngine("tier2_mysql", gridrdb.MySQL)
	for _, src := range []*gridrdb.Engine{tier1, tier2} {
		if _, err := ntuple.NewGenerator(cfg).PopulateNormalized(src); err != nil {
			log.Fatalf("populate %s: %v", src.Name(), err)
		}
	}
	fmt.Printf("sources ready: %s, %s (%d events x %d vars each)\n",
		tier1.Name(), tier2.Name(), cfg.NEvents, cfg.NVar)

	// --- 2. Stage 1: ETL into the warehouse --------------------------
	wh := gridrdb.NewEngine("tier0_warehouse", gridrdb.Oracle)
	if err := warehouse.InitWarehouse(wh, wh.Dialect(), cfg); err != nil {
		log.Fatal(err)
	}
	etl := warehouse.NewETL()
	res, err := etl.RunStage1(tier1, cfg, wh, wh.Dialect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1: %d rows staged through %.1f kB temp file (extract %.1fms, load %.1fms)\n",
		res.Rows, float64(res.Bytes)/1000,
		res.ExtractTime.Seconds()*1000, res.LoadTime.Seconds()*1000)

	// --- 3. Stage 2: views -> data marts ------------------------------
	views := warehouse.RunViews(cfg, wh.Dialect())
	if err := warehouse.CreateViews(wh, views); err != nil {
		log.Fatal(err)
	}
	placements := []struct {
		mart  *gridrdb.Engine
		view  string
		table string
	}{
		{gridrdb.NewEngine("mart_mysql", gridrdb.MySQL), views[0].Name, "higgs_run100"},
		{gridrdb.NewEngine("mart_mssql", gridrdb.MSSQL), views[1].Name, "higgs_run101"},
		{gridrdb.NewEngine("mart_oracle", gridrdb.Oracle), views[2].Name, "higgs_run102"},
		// The SQLite mart holds a *replica* of the run-100 view (tier-3
		// laptop use case), so cross-server replica validation has
		// overlapping event ids to join on.
		{gridrdb.NewEngine("mart_sqlite", gridrdb.SQLite), views[0].Name, "higgs_replica"},
	}
	for _, p := range placements {
		if _, err := etl.Materialize(wh, p.view, cfg, p.mart, p.mart.Dialect(), p.table); err != nil {
			log.Fatalf("materialize into %s: %v", p.mart.Name(), err)
		}
		fmt.Printf("stage 2: %s materialized into %s.%s (%s dialect)\n",
			p.view, p.mart.Name(), p.table, p.mart.Dialect().Name)
	}
	marts := []*gridrdb.Engine{placements[0].mart, placements[1].mart, placements[2].mart, placements[3].mart}

	// --- 4. Grid deployment: RLS + two JClarens servers --------------
	grid := gridrdb.NewGrid()
	defer grid.Close()
	if _, err := grid.StartRLS(""); err != nil {
		log.Fatal(err)
	}
	jc1, err := grid.AddServer(gridrdb.ServerConfig{Name: "jclarens-1", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	jc2, err := grid.AddServer(gridrdb.ServerConfig{Name: "jclarens-2", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	// jc1 hosts the MySQL + MS-SQL marts, jc2 the Oracle + SQLite ones.
	for i, mart := range marts {
		srv := jc1
		if i >= 2 {
			srv = jc2
		}
		if err := srv.AddMart(mart); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("grid up: RLS at %s, servers %s and %s\n", grid.RLSURL(), jc1.URL, jc2.URL)

	// --- 5. Federated queries ----------------------------------------
	qr, err := jc1.Query("SELECT COUNT(*) AS n, AVG(v0) AS mean_v0 FROM higgs_run100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal query via %s route:\n%s", qr.Route, gridrdb.FormatResult(qr.ResultSet))

	// higgs_run102 lives on jc2; jc1 finds it through the RLS.
	qr, err = jc1.Query("SELECT event_id, run, v0 FROM higgs_run102 WHERE v0 > 60 ORDER BY v0 DESC LIMIT 5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-server query via %s route (%d servers):\n%s",
		qr.Route, qr.Servers, gridrdb.FormatResult(qr.ResultSet))

	// A join spanning both servers: validate the tier-3 replica of the
	// run-100 view against the primary mart.
	qr, err = jc1.Query(`SELECT a.event_id, a.v0 AS v0_primary, b.v0 AS v0_replica
	                     FROM higgs_run100 a JOIN higgs_replica b ON a.event_id = b.event_id
	                     WHERE a.v0 > 55 ORDER BY a.v0 DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-server replica-validation join via %s route (%d servers):\n%s",
		qr.Route, qr.Servers, gridrdb.FormatResult(qr.ResultSet))
}
