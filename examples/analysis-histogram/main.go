// analysis-histogram reproduces the paper's Java Analysis Studio plug-in
// workflow (§6): an analysis client submits queries for ntuple data
// through the Clarens web-service interface and visualizes the result as
// histograms — here rendered as text, HBOOK style.
//
// Run with: go run ./examples/analysis-histogram
package main

import (
	"fmt"
	"log"

	"gridrdb"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/histogram"
	"gridrdb/internal/ntuple"
	"gridrdb/internal/warehouse"
)

func main() {
	// Build a small analysis grid: one warehouse-fed mart per server.
	cfg := ntuple.Config{Name: "zmumu", NVar: 4, NEvents: 2000, Runs: 2, Seed: 20050615}
	src := gridrdb.NewEngine("daq_source", gridrdb.MySQL)
	if _, err := ntuple.NewGenerator(cfg).PopulateNormalized(src); err != nil {
		log.Fatal(err)
	}
	wh := gridrdb.NewEngine("warehouse", gridrdb.Oracle)
	if err := warehouse.InitWarehouse(wh, wh.Dialect(), cfg); err != nil {
		log.Fatal(err)
	}
	etl := warehouse.NewETL()
	if _, err := etl.RunStage1(src, cfg, wh, wh.Dialect()); err != nil {
		log.Fatal(err)
	}
	views := warehouse.RunViews(cfg, wh.Dialect())
	if err := warehouse.CreateViews(wh, views); err != nil {
		log.Fatal(err)
	}
	martA := gridrdb.NewEngine("mart_run100", gridrdb.MySQL)
	martB := gridrdb.NewEngine("mart_run101", gridrdb.MSSQL)
	if _, err := etl.Materialize(wh, views[0].Name, cfg, martA, martA.Dialect(), "zmumu_run100"); err != nil {
		log.Fatal(err)
	}
	if _, err := etl.Materialize(wh, views[1].Name, cfg, martB, martB.Dialect(), "zmumu_run101"); err != nil {
		log.Fatal(err)
	}

	grid := gridrdb.NewGrid()
	defer grid.Close()
	if _, err := grid.StartRLS(""); err != nil {
		log.Fatal(err)
	}
	jc1, err := grid.AddServer(gridrdb.ServerConfig{Name: "jc1", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	jc2, err := grid.AddServer(gridrdb.ServerConfig{Name: "jc2", Open: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := jc1.AddMart(martA); err != nil {
		log.Fatal(err)
	}
	if err := jc2.AddMart(martB); err != nil {
		log.Fatal(err)
	}

	// The analysis client talks XML-RPC, like the JAS plug-in did.
	client := jc1.Client()

	fill := func(h *histogram.Hist1D, query, column string) {
		res, err := client.Call("dataaccess.query", query)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		rs, err := dataaccess.DecodeResult(res)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := h.FillColumn(rs, column); err != nil {
			log.Fatal(err)
		}
	}

	// Histogram 1: the v0 spectrum of run 100 (local to jc1).
	h1, _ := histogram.New("v0 spectrum, run 100 (local mart)", 12, 0, 120)
	fill(h1, "SELECT v0 FROM zmumu_run100", "v0")
	fmt.Println(h1.Render(50))

	// Histogram 2: the same variable for run 101, which lives on the
	// other server — the middleware resolves it via the RLS.
	h2, _ := histogram.New("v0 spectrum, run 101 (remote mart via RLS)", 12, 0, 120)
	fill(h2, "SELECT v0 FROM zmumu_run101", "v0")
	fmt.Println(h2.Render(50))

	// Histogram 3: a derived quantity over a cross-server UNION of both
	// runs, with a cut — one federated SQL statement.
	h3, _ := histogram.New("v1+v2 (both runs, v0 > 40)", 10, 0, 200)
	fill(h3, `SELECT v1 + v2 AS sum12 FROM zmumu_run100 WHERE v0 > 40
	          UNION ALL SELECT v1 + v2 AS sum12 FROM zmumu_run101 WHERE v0 > 40`, "sum12")
	fmt.Println(h3.Render(50))

	fmt.Printf("run 100: %d entries (mean %.2f)  |  run 101: %d entries (mean %.2f)\n",
		h1.Entries(), h1.Mean(), h2.Entries(), h2.Mean())
}
