// federate-legacy demonstrates the paper's semantic-integration future
// work (§6): two sites store the *same* physics quantities under different
// vendor conventions — an Oracle site with EVENTS_T01/EVT_ID/E_RAW naming
// and a MySQL site with tbl_events/evt_id/e_raw naming. The semantic
// matcher scores table pairs by name and structural similarity, unifies
// their logical names, and the Unity federation then treats them as
// replicas of one logical table: a single query reaches either copy, with
// replica selection steered by network proximity probes.
//
// The example finishes with the streamed counterpart of the federated
// query: rows pulled incrementally off the chosen replica instead of one
// materialized result. Against a running jclarensd the same shape is
// reached from the command line with `gridql -stream` (page size set by
// `-fetch-size`, server-side cursor traffic inspected with `-cursors`).
//
// Run with: go run ./examples/federate-legacy
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"gridrdb"
	"gridrdb/internal/proximity"
	"gridrdb/internal/semantic"
	"gridrdb/internal/unity"
	"gridrdb/internal/xspec"
)

func main() {
	// --- Two legacy sites with divergent naming -----------------------
	ora := gridrdb.NewEngine("legacy_oracle", gridrdb.Oracle)
	if err := ora.ExecScript(`
		CREATE TABLE "EVENTS_T01" ("EVT_ID" NUMBER PRIMARY KEY, "RUN_NO" NUMBER, "E_RAW" BINARY_DOUBLE);
		INSERT INTO "EVENTS_T01" VALUES (1, 100, 5.5), (2, 100, 6.25), (3, 101, 7.75);
		CREATE TABLE "RUN_META" ("RUN_NO" NUMBER PRIMARY KEY, "DETECTOR" VARCHAR2(16));
		INSERT INTO "RUN_META" VALUES (100, 'CMS'), (101, 'ATLAS')`); err != nil {
		log.Fatal(err)
	}
	my := gridrdb.NewEngine("legacy_mysql", gridrdb.MySQL)
	if err := my.ExecScript("CREATE TABLE `tbl_events` (`evt_id` BIGINT PRIMARY KEY, `run_no` BIGINT, `e_raw` DOUBLE);" +
		"INSERT INTO `tbl_events` VALUES (1, 100, 5.5), (2, 100, 6.25), (3, 101, 7.75);" +
		"CREATE TABLE `runs` (`run_no` BIGINT PRIMARY KEY, `detector` VARCHAR(16));" +
		"INSERT INTO `runs` VALUES (100, 'CMS'), (101, 'ATLAS')"); err != nil {
		log.Fatal(err)
	}

	oraSpec, err := gridrdb.GenerateXSpec(ora)
	if err != nil {
		log.Fatal(err)
	}
	mySpec, err := gridrdb.GenerateXSpec(my)
	if err != nil {
		log.Fatal(err)
	}

	// --- Semantic matching --------------------------------------------
	matches := semantic.MatchSpecs(oraSpec, mySpec, semantic.DefaultOptions())
	fmt.Println("proposed table correspondences:")
	for _, m := range matches {
		fmt.Printf("  %-12s <-> %-12s  score=%.2f (name %.2f, structure %.2f), %d column pairs\n",
			m.LeftTable, m.RightTable, m.Score, m.NameScore, m.StructScore, len(m.Columns))
	}
	if _, err := semantic.Unify(oraSpec, mySpec, matches); err != nil {
		log.Fatal(err)
	}

	// --- Federate the unified specs -----------------------------------
	upper := &xspec.UpperSpec{Name: "legacy-fed", Sources: []xspec.SourceRef{
		{Name: "legacy_oracle", URL: "local://legacy_oracle", Driver: "gridsql-oracle"},
		{Name: "legacy_mysql", URL: "local://legacy_mysql", Driver: "gridsql-mysql"},
	}}
	fed, err := unity.Open(upper, map[string]*xspec.LowerSpec{
		"legacy_oracle": oraSpec, "legacy_mysql": mySpec,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()

	fmt.Println("\nunified dictionary:")
	dict := fed.Dictionary()
	for _, tname := range dict.LogicalTables() {
		locs := dict.Lookup(tname)
		fmt.Printf("  %-14s -> %d replica(s)\n", tname, len(locs))
	}

	// One logical query now reaches either site's copy.
	rs, err := fed.Query(`SELECT e.evt_id, e.e_raw, r.detector
	                      FROM events_t01 e JOIN run_meta r ON e.run_no = r.run_no
	                      WHERE r.detector = 'CMS' ORDER BY e.evt_id`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfederated query over the unified logical schema:\n%s", gridrdb.FormatResult(rs))

	// --- Proximity-steered replica selection ---------------------------
	prober := proximity.NewProber(fed, 0)
	prober.SetMeasureFunc(func(source string) (time.Duration, error) {
		// Pretend the Oracle site is across the WAN.
		if source == "legacy_oracle" {
			return 80 * time.Millisecond, nil
		}
		return 2 * time.Millisecond, nil
	})
	prober.ProbeOnce()
	plan, err := fed.PlanQuery("SELECT evt_id FROM events_t01")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter proximity probes, the replicated table is read from: %s (the near site)\n",
		plan.Subs[0].Source)

	// --- Streamed federated scan ---------------------------------------
	// The same logical query as an incremental row stream: the pushdown
	// plan streams straight off the chosen replica, one row per pull.
	// Over XML-RPC this shape is `gridql -stream -fetch-size 256 "..."`,
	// with `gridql -cursors` showing the server-side cursor (and, on
	// multi-server grids, cursor-relay) counters.
	it, _, err := fed.QueryStreamContext(context.Background(), "SELECT evt_id, e_raw FROM events_t01")
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	streamed := 0
	for {
		if _, err := it.Next(); err != nil {
			if err != io.EOF {
				log.Fatal(err)
			}
			break
		}
		streamed++
	}
	fmt.Printf("\nstreamed federated scan: %d rows pulled incrementally (gridql -stream / -fetch-size / -cursors)\n", streamed)
}
