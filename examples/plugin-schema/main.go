// plugin-schema demonstrates the paper's two runtime-evolution features:
//
//   - §4.10 plug-in databases: a brand-new SQLite database is added to a
//     running JClarens server over XML-RPC by handing it the URL of the
//     database's XSpec file, the driver name and the database location;
//   - §4.9 schema-change tracking: a column and a table are added to a
//     live backend, and the periodic tracker detects the change through
//     the size+MD5 fingerprint of the regenerated XSpec and hot-reloads
//     the server's data dictionary.
//
// Run with: go run ./examples/plugin-schema
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gridrdb"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/xspec"
)

func main() {
	grid := gridrdb.NewGrid()
	defer grid.Close()
	if _, err := grid.StartRLS(""); err != nil {
		log.Fatal(err)
	}
	jc, err := grid.AddServer(gridrdb.ServerConfig{Name: "jclarens", Open: true})
	if err != nil {
		log.Fatal(err)
	}

	// A mart that is present from the start.
	base := gridrdb.NewEngine("base_mart", gridrdb.MySQL)
	if err := base.ExecScript("CREATE TABLE `runs` (`run` BIGINT PRIMARY KEY, `detector` VARCHAR(16));" +
		"INSERT INTO `runs` VALUES (100, 'CMS'), (101, 'ATLAS')"); err != nil {
		log.Fatal(err)
	}
	if err := jc.AddMart(base); err != nil {
		log.Fatal(err)
	}
	client := jc.Client()
	printTables(client, "initial")

	// ---- §4.10: plug in a new database at runtime --------------------
	laptop := gridrdb.NewEngine("laptop_sqlite", gridrdb.SQLite)
	if err := laptop.ExecScript("CREATE TABLE beamspot (run INTEGER PRIMARY KEY, x REAL, y REAL);" +
		"INSERT INTO beamspot VALUES (100, 0.08, -0.03), (101, 0.09, -0.02)"); err != nil {
		log.Fatal(err)
	}
	spec, err := gridrdb.GenerateXSpec(laptop)
	if err != nil {
		log.Fatal(err)
	}
	data, err := spec.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "xspec")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	specPath := filepath.Join(dir, "laptop_sqlite.xspec")
	if err := xspec.WriteFile(specPath, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nXSpec written to %s (%d bytes); plugging in over XML-RPC...\n", specPath, len(data))

	res, err := client.Call("dataaccess.addDatabase", "file://"+specPath, "gridsql-sqlite", "local://laptop_sqlite")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server registered plug-in database %q\n", res)
	printTables(client, "after plug-in")

	// The new table participates in federated joins immediately.
	qr, err := jc.Query("SELECT r.run, r.detector, b.x, b.y FROM runs r JOIN beamspot b ON r.run = b.run ORDER BY r.run")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin with the plugged-in table (%s route):\n%s", qr.Route, gridrdb.FormatResult(qr.ResultSet))

	// ---- §4.9: schema-change tracking ---------------------------------
	tracker := dataaccess.NewTracker(jc.Service, 0) // manual CheckNow
	if _, err := tracker.CheckNow(); err != nil {   // baseline fingerprints
		log.Fatal(err)
	}

	fmt.Println("\nmutating the live backend: ALTER TABLE runs ADD period; CREATE TABLE quality")
	if err := base.ExecScript("ALTER TABLE `runs` ADD COLUMN `period` VARCHAR(8) DEFAULT 'A';" +
		"CREATE TABLE `quality` (`run` BIGINT, `flag` VARCHAR(8));" +
		"INSERT INTO `quality` VALUES (100, 'GOLDEN')"); err != nil {
		log.Fatal(err)
	}

	updated, err := tracker.CheckNow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracker detected changed schemas: %v\n", updated)
	printTables(client, "after schema reload")

	qr, err = jc.Query("SELECT r.run, r.period, q.flag FROM runs r JOIN quality q ON r.run = q.run")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery using the new column and table:\n%s", gridrdb.FormatResult(qr.ResultSet))

	checks, ups := tracker.Stats()
	fmt.Printf("tracker ran %d checks and applied %d updates\n", checks, ups)
}

func printTables(c interface {
	Call(string, ...interface{}) (interface{}, error)
}, label string) {
	res, err := c.Call("dataaccess.tables")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logical tables (%s): %v\n", label, res)
}
