package gridrdb

// Daemon-level integration test: builds the real binaries (rlsd, dbserved,
// jclarensd, gridql, etlctl) and drives a two-process deployment over real
// sockets, exactly as the README's three-terminal walkthrough does.

import (
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gridrdb/internal/sqlengine"
)

// buildCmds compiles the commands once into a temp dir.
func buildCmds(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", n, err, msg)
		}
		out[n] = bin
	}
	return out
}

// freePort reserves an ephemeral port and returns "127.0.0.1:port".
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches a binary and kills it at cleanup.
func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode < 500 {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never came up", addr)
}

func TestDaemonsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level test")
	}
	bins := buildCmds(t, "rlsd", "dbserved", "jclarensd", "gridql")

	// Schema for the hosted databases.
	schema := filepath.Join(t.TempDir(), "schema.sql")
	if err := os.WriteFile(schema, []byte(
		"CREATE TABLE `events` (`event_id` BIGINT PRIMARY KEY, `run` BIGINT, `e_tot` DOUBLE);"+
			"INSERT INTO `events` VALUES (1,100,5.5),(2,100,6.5),(3,101,7.5);"), 0o644); err != nil {
		t.Fatal(err)
	}
	schema2 := filepath.Join(t.TempDir(), "schema2.sql")
	if err := os.WriteFile(schema2, []byte(
		"CREATE TABLE [runsinfo] ([run] BIGINT PRIMARY KEY, [detector] NVARCHAR(16));"+
			"INSERT INTO [runsinfo] VALUES (100,'CMS'),(101,'ATLAS');"), 0o644); err != nil {
		t.Fatal(err)
	}

	rlsAddr := freePort(t)
	dbAddr := freePort(t)
	jc1Addr := freePort(t)
	jc2Addr := freePort(t)

	startDaemon(t, bins["rlsd"], "-addr", rlsAddr, "-ttl", "1m")
	waitHTTP(t, "http://"+rlsAddr+"/healthz")

	startDaemon(t, bins["dbserved"], "-addr", dbAddr,
		"-db", "martA=mysql", "-init", "martA="+schema,
		"-db", "martB=mssql", "-init", "martB="+schema2)
	waitTCP(t, dbAddr)

	startDaemon(t, bins["jclarensd"], "-addr", jc1Addr, "-name", "jc1",
		"-rls", "http://"+rlsAddr,
		"-mart", "martA=gridsql-mysql=tcp://"+dbAddr+"/martA",
		"-renew", "10s")
	waitHTTP(t, "http://"+jc1Addr+"/healthz")

	startDaemon(t, bins["jclarensd"], "-addr", jc2Addr, "-name", "jc2",
		"-rls", "http://"+rlsAddr,
		"-mart", "martB=gridsql-mssql=tcp://"+dbAddr+"/martB")
	waitHTTP(t, "http://"+jc2Addr+"/healthz")

	gridql := func(args ...string) string {
		out, err := exec.Command(bins["gridql"], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("gridql %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Table listing over XML-RPC.
	if out := gridql("-server", "http://"+jc1Addr, "-tables"); !strings.Contains(out, "events") {
		t.Fatalf("tables: %s", out)
	}
	// Local query.
	out := gridql("-server", "http://"+jc1Addr, "SELECT event_id, e_tot FROM events WHERE run = 100")
	if !strings.Contains(out, "5.5") || !strings.Contains(out, "2 rows") {
		t.Fatalf("local query: %s", out)
	}
	// Cross-server query: jc1 does not host runsinfo; it must go through
	// the RLS to jc2.
	out = gridql("-server", "http://"+jc1Addr, "SELECT detector FROM runsinfo WHERE run = 101")
	if !strings.Contains(out, "ATLAS") || !strings.Contains(out, "remote") {
		t.Fatalf("cross-server query: %s", out)
	}
	// Cross-server join (mixed route).
	out = gridql("-server", "http://"+jc1Addr,
		"SELECT e.event_id, r.detector FROM events e JOIN runsinfo r ON e.run = r.run ORDER BY e.event_id")
	if !strings.Contains(out, "CMS") || !strings.Contains(out, "3 rows") {
		t.Fatalf("join: %s", out)
	}
	// Schema inspection.
	out = gridql("-server", "http://"+jc1Addr, "-schema", "events")
	if !strings.Contains(out, "event_id") {
		t.Fatalf("schema: %s", out)
	}
}

func TestEtlctlEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-level test")
	}
	bins := buildCmds(t, "etlctl")

	// Build a source snapshot file the daemon can host: use the library to
	// create a normalized source + empty warehouse, saved as snapshots.
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "src.gridsql")
	whPath := filepath.Join(dir, "wh.gridsql")
	martPath := filepath.Join(dir, "mart.gridsql")

	mkSnapshot(t, srcPath, "mysql", "CREATE TABLE `nt_meta` (`ntuple_id` BIGINT PRIMARY KEY, `name` VARCHAR(64), `nvar` BIGINT, `nevents` BIGINT);"+
		"INSERT INTO `nt_meta` VALUES (1, 'nt', 2, 3);"+
		"CREATE TABLE `nt_vars` (`var_idx` BIGINT PRIMARY KEY, `var_name` VARCHAR(64), `units` VARCHAR(64));"+
		"INSERT INTO `nt_vars` VALUES (0,'v0','GeV'),(1,'v1','GeV');"+
		"CREATE TABLE `nt_events` (`event_id` BIGINT PRIMARY KEY, `run` BIGINT);"+
		"INSERT INTO `nt_events` VALUES (1,100),(2,100),(3,101);"+
		"CREATE TABLE `nt_values` (`event_id` BIGINT, `var_idx` BIGINT, `val` DOUBLE);"+
		"INSERT INTO `nt_values` VALUES (1,0,1.5),(1,1,2.5),(2,0,3.5),(2,1,4.5),(3,0,5.5),(3,1,6.5);")
	mkSnapshot(t, whPath, "oracle", "")
	mkSnapshot(t, martPath, "sqlite", "")

	run := func(args ...string) string {
		out, err := exec.Command(bins["etlctl"], args...).CombinedOutput()
		if err != nil {
			t.Fatalf("etlctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	// Stage 1 against file:// DSNs.
	out := run("-stage", "1", "-src", "file://"+srcPath, "-warehouse", "file://"+whPath,
		"-ntuple", "nt", "-nvar", "2", "-create-views")
	if !strings.Contains(out, "stage 1: 3 rows") {
		t.Fatalf("stage1: %s", out)
	}
	// Stage 2 materializes a run view into the mart.
	out = run("-stage", "2", "-warehouse", "file://"+whPath, "-mart", "file://"+martPath,
		"-mart-dialect", "sqlite", "-view", "v_nt_run100", "-ntuple", "nt", "-nvar", "2")
	if !strings.Contains(out, "stage 2: 2 rows") {
		t.Fatalf("stage2: %s", out)
	}
}

func mkSnapshot(t *testing.T, path, dialectName, script string) {
	t.Helper()
	d, err := sqlengine.DialectByName(dialectName)
	if err != nil {
		t.Fatal(err)
	}
	e := sqlengine.NewEngine(filepath.Base(path), d)
	if script != "" {
		if err := e.ExecScript(script); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}
