// Command dbserved serves one or more emulated vendor databases over TCP,
// playing the role of the remote Oracle/MySQL/MS-SQL servers at the LHC
// tier sites. Databases are declared as name=dialect pairs and optionally
// bootstrapped from SQL scripts or snapshot files.
//
// Usage:
//
//	dbserved -addr :9401 -db tier1ora=oracle -db tier2my=mysql \
//	         [-init tier1ora=/path/schema.sql] [-load tier2my=/path/db.gridsql] \
//	         [-user admin:pw]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"gridrdb/internal/sqlengine"
	"gridrdb/internal/wire"
)

type repeated []string

func (r *repeated) String() string     { return strings.Join(*r, ",") }
func (r *repeated) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	addr := flag.String("addr", ":9401", "listen address")
	var dbs, inits, loads, users repeated
	flag.Var(&dbs, "db", "database to host, as name=dialect (repeatable)")
	flag.Var(&inits, "init", "bootstrap SQL script, as name=path (repeatable)")
	flag.Var(&loads, "load", "snapshot to load, as name=path (repeatable)")
	flag.Var(&users, "user", "credentials required on every database, as user:password (repeatable)")
	flag.Parse()

	if len(dbs) == 0 && len(loads) == 0 {
		log.Fatal("dbserved: at least one -db or -load is required")
	}
	srv := wire.NewServer(log.Default())
	engines := map[string]*sqlengine.Engine{}

	for _, spec := range dbs {
		name, dialectName, err := splitPair(spec)
		if err != nil {
			log.Fatalf("dbserved: -db %q: %v", spec, err)
		}
		dialect, err := sqlengine.DialectByName(dialectName)
		if err != nil {
			log.Fatalf("dbserved: %v", err)
		}
		engines[name] = sqlengine.NewEngine(name, dialect)
	}
	for _, spec := range loads {
		name, path, err := splitPair(spec)
		if err != nil {
			log.Fatalf("dbserved: -load %q: %v", spec, err)
		}
		e, err := sqlengine.LoadFile(path)
		if err != nil {
			log.Fatalf("dbserved: load %s: %v", path, err)
		}
		engines[name] = e
	}
	for _, spec := range inits {
		name, path, err := splitPair(spec)
		if err != nil {
			log.Fatalf("dbserved: -init %q: %v", spec, err)
		}
		e, ok := engines[name]
		if !ok {
			log.Fatalf("dbserved: -init %s: no such database", name)
		}
		script, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("dbserved: %v", err)
		}
		if err := e.ExecScript(string(script)); err != nil {
			log.Fatalf("dbserved: init %s: %v", name, err)
		}
	}
	for _, cred := range users {
		u, p, ok := strings.Cut(cred, ":")
		if !ok {
			log.Fatalf("dbserved: -user %q: want user:password", cred)
		}
		for _, e := range engines {
			e.AddUser(u, p)
		}
	}
	for name, e := range engines {
		srv.AddEngine(e)
		log.Printf("dbserved: hosting %s (%s dialect, %d tables)", name, e.Dialect().Name, len(e.Database().TableNames()))
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("dbserved: %v", err)
	}
	log.Printf("dbserved: listening on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("dbserved: shutting down")
	srv.Close()
}

func splitPair(s string) (string, string, error) {
	a, b, ok := strings.Cut(s, "=")
	if !ok || a == "" || b == "" {
		return "", "", fmt.Errorf("want key=value")
	}
	return a, b, nil
}
