// Command rlsd runs the central Replica Location Service catalog (§4.8).
//
// Usage:
//
//	rlsd [-addr :9400] [-ttl 5m]
//
// Endpoints: POST /publish, POST /unpublish, GET /lookup?table=T,
// GET /dump, GET /healthz.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"gridrdb/internal/rls"
)

func main() {
	addr := flag.String("addr", ":9400", "listen address")
	ttl := flag.Duration("ttl", 5*time.Minute, "publication time-to-live")
	flag.Parse()

	srv := rls.NewServer(*ttl)
	url, err := srv.Start(*addr)
	if err != nil {
		log.Fatalf("rlsd: %v", err)
	}
	log.Printf("rlsd: replica location service at %s (ttl %s)", url, *ttl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("rlsd: shutting down")
	srv.Close()
}
