// Command etlctl drives the warehouse ETL pipeline from the command line:
// Stage 1 populates the warehouse from normalized sources, Stage 2
// materializes warehouse views into data marts (§5's stages).
//
// Usage:
//
//	etlctl -stage 1 -src tcp://host/tier2my -warehouse tcp://host/wh \
//	       -ntuple nt -nvar 8 -nevents 1000
//	etlctl -stage 2 -warehouse tcp://host/wh -mart tcp://host/mart1 \
//	       -mart-dialect mysql -view v_nt_run100 -ntuple nt -nvar 8
//
// Databases are addressed by DSN; local:// and file:// also work.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/ntuple"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/warehouse"
	"gridrdb/internal/wire"
)

// dsnDB opens a read/write handle for a DSN.
func dsnDB(dsn string) (warehouse.DB, func(), error) {
	switch {
	case strings.HasPrefix(dsn, "tcp://"):
		rest := strings.TrimPrefix(dsn, "tcp://")
		rest = strings.SplitN(rest, "?", 2)[0]
		host, db, ok := strings.Cut(rest, "/")
		if !ok {
			return nil, nil, fmt.Errorf("bad tcp DSN %q", dsn)
		}
		var hello wire.Hello
		hello.Database = db
		if at := strings.LastIndex(host, "@"); at >= 0 {
			cred := host[:at]
			host = host[at+1:]
			hello.User, hello.Password, _ = strings.Cut(cred, ":")
		}
		c, err := wire.Dial(host, hello, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	case strings.HasPrefix(dsn, "file://"):
		path := strings.TrimPrefix(dsn, "file://")
		e, err := sqlengine.LoadFile(path)
		if err != nil {
			return nil, nil, err
		}
		return e, func() { e.SaveFile(path) }, nil
	}
	return nil, nil, fmt.Errorf("unsupported DSN %q (want tcp:// or file://)", dsn)
}

func main() {
	stage := flag.Int("stage", 1, "ETL stage: 1 (sources -> warehouse) or 2 (views -> marts)")
	src := flag.String("src", "", "stage 1: normalized source DSN")
	wh := flag.String("warehouse", "", "warehouse DSN")
	whDialect := flag.String("warehouse-dialect", "oracle", "warehouse vendor dialect")
	mart := flag.String("mart", "", "stage 2: target mart DSN")
	martDialect := flag.String("mart-dialect", "mysql", "mart vendor dialect")
	view := flag.String("view", "", "stage 2: warehouse view to materialize")
	martTable := flag.String("mart-table", "", "stage 2: mart table name (default: the view name)")
	name := flag.String("ntuple", "nt", "ntuple name")
	nvar := flag.Int("nvar", 8, "variables per event")
	direct := flag.Bool("direct", false, "stream directly instead of staging through a temp file")
	makeViews := flag.Bool("create-views", false, "stage 1: also create per-run views on the warehouse")
	notify := flag.String("notify", "", "JClarens server URL whose query-result cache to flush after a mart refresh")
	notifyTimeout := flag.Duration("notify-timeout", 10*time.Second, "deadline for the -notify cache-flush call (0 = none)")
	flag.Parse()

	cfg := ntuple.Config{Name: *name, NVar: *nvar, Runs: 4}
	whd, err := sqlengine.DialectByName(*whDialect)
	if err != nil {
		log.Fatalf("etlctl: %v", err)
	}
	whDB, whClose, err := dsnDB(*wh)
	if err != nil {
		log.Fatalf("etlctl: warehouse: %v", err)
	}
	defer whClose()

	etl := warehouse.NewETL()
	etl.Staging = !*direct

	switch *stage {
	case 1:
		if *src == "" {
			log.Fatal("etlctl: -src is required for stage 1")
		}
		srcDB, srcClose, err := dsnDB(*src)
		if err != nil {
			log.Fatalf("etlctl: source: %v", err)
		}
		defer srcClose()
		if err := warehouse.InitWarehouse(whDB, whd, cfg); err != nil {
			log.Fatalf("etlctl: init warehouse: %v", err)
		}
		res, err := etl.RunStage1(srcDB, cfg, whDB, whd)
		if err != nil {
			log.Fatalf("etlctl: stage 1: %v", err)
		}
		fmt.Printf("stage 1: %d rows, %.3f kB staged, extract %.4fs, load %.4fs\n",
			res.Rows, float64(res.Bytes)/1000, res.ExtractTime.Seconds(), res.LoadTime.Seconds())
		if *makeViews {
			views := warehouse.RunViews(cfg, whd)
			if err := warehouse.CreateViews(whDB, views); err != nil {
				log.Fatalf("etlctl: create views: %v", err)
			}
			for _, v := range views {
				fmt.Printf("created view %s\n", v.Name)
			}
		}
	case 2:
		if *mart == "" || *view == "" {
			log.Fatal("etlctl: -mart and -view are required for stage 2")
		}
		md, err := sqlengine.DialectByName(*martDialect)
		if err != nil {
			log.Fatalf("etlctl: %v", err)
		}
		martDB, martClose, err := dsnDB(*mart)
		if err != nil {
			log.Fatalf("etlctl: mart: %v", err)
		}
		defer martClose()
		target := *martTable
		if target == "" {
			target = *view
		}
		res, err := etl.Materialize(whDB, *view, cfg, martDB, md, target)
		if err != nil {
			log.Fatalf("etlctl: stage 2: %v", err)
		}
		fmt.Printf("stage 2: %d rows, %.3f kB staged, extract %.4fs, load %.4fs\n",
			res.Rows, float64(res.Bytes)/1000, res.ExtractTime.Seconds(), res.LoadTime.Seconds())
		if *notify != "" {
			// The mart's contents changed under the serving instance's
			// query-result cache; drop its entries so clients see fresh rows.
			ctx := context.Background()
			if *notifyTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, *notifyTimeout)
				defer cancel()
			}
			dropped, err := clarens.NewClient(*notify).CallContext(ctx, "system.cacheflush")
			if err != nil {
				log.Fatalf("etlctl: notify %s: %v", *notify, err)
			}
			fmt.Printf("flushed %v cached entries on %s\n", dropped, *notify)
		}
	default:
		log.Fatalf("etlctl: unknown stage %d", *stage)
	}
}
