// Command gridql is the CLI query client: it submits SQL (written against
// logical table names) to a JClarens server over XML-RPC and prints the
// merged result table, mirroring the paper's lightweight Clarens clients.
//
// Usage:
//
//	gridql -server http://host:9410 [-user u -password p] [-timeout 30s] "SELECT ..."
//	gridql -server http://host:9410 -tables
//	gridql -server http://host:9410 -schema events
//	gridql -server http://host:9410 -cache
//	gridql -server http://host:9410 -cache-flush
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"gridrdb/internal/clarens"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/sqlengine"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9410", "JClarens server URL")
	user := flag.String("user", "", "login user (for closed servers)")
	password := flag.String("password", "", "login password")
	tables := flag.Bool("tables", false, "list logical tables and exit")
	schema := flag.String("schema", "", "print a table's schema and exit")
	cache := flag.Bool("cache", false, "print the server's query-result cache stats and exit")
	cacheFlush := flag.Bool("cache-flush", false, "drop the server's query-result cache and exit")
	timeout := flag.Duration("timeout", 0, "abandon the call after this long (0 = no deadline); the server cancels the query's backend work")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c := clarens.NewClient(*server)
	if *user != "" {
		if err := c.LoginContext(ctx, *user, *password); err != nil {
			log.Fatalf("gridql: login: %v", err)
		}
	}

	switch {
	case *cache:
		res, err := c.CallContext(ctx, "system.cachestats")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("query-result cache enabled=%v\n", m["enabled"])
		for _, k := range []string{"entries", "hits", "misses", "coalesced", "evictions", "expirations", "invalidations"} {
			fmt.Printf("  %-14s %v\n", k, m[k])
		}
	case *cacheFlush:
		res, err := c.CallContext(ctx, "system.cacheflush")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		fmt.Printf("dropped %v cached entries\n", res)
	case *tables:
		res, err := c.CallContext(ctx, "dataaccess.tables")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		for _, t := range res.([]interface{}) {
			fmt.Println(t)
		}
	case *schema != "":
		res, err := c.CallContext(ctx, "dataaccess.schema", *schema)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("table %v (replicas: %v)\n", m["table"], m["replicas"])
		cols, _ := m["columns"].([]interface{})
		for _, ci := range cols {
			col := ci.(map[string]interface{})
			fmt.Printf("  %-24v %-12v nullable=%v key=%v\n", col["name"], col["kind"], col["nullable"], col["key"])
		}
	default:
		query := strings.TrimSpace(strings.Join(flag.Args(), " "))
		if query == "" {
			log.Fatal("gridql: no query given (or use -tables / -schema)")
		}
		res, err := c.CallContext(ctx, "dataaccess.query", query)
		if clarens.IsCancelled(err) {
			if *timeout > 0 {
				log.Fatalf("gridql: query abandoned after -timeout %s (the server cancels its backend work): %v", *timeout, err)
			}
			log.Fatalf("gridql: query cancelled server-side (its request deadline expired): %v", err)
		}
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		rs, err := dataaccess.DecodeResult(res)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		fmt.Print(sqlengine.FormatResult(rs))
		m := res.(map[string]interface{})
		fmt.Printf("(%d rows via %v, %v server(s))\n", len(rs.Rows), m["route"], m["servers"])
	}
}
