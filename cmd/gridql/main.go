// Command gridql is the CLI query client: it submits SQL (written against
// logical table names) to a JClarens server over XML-RPC and prints the
// merged result table, mirroring the paper's lightweight Clarens clients.
//
// Usage:
//
//	gridql -server http://host:9410 [-user u -password p] [-timeout 30s] "SELECT ..."
//	gridql -server http://host:9410 -stream [-fetch-size 256] "SELECT ..."
//	gridql -server http://host:9410 -tables
//	gridql -server http://host:9410 -schema events
//	gridql -server http://host:9410 -cache
//	gridql -server http://host:9410 -cache-flush
//	gridql -server http://host:9410 -cursors
//	gridql -server http://host:9410 -explain "SELECT ..."
//	gridql -server http://host:9410 -slow [-n 10]
//	gridql -server http://host:9410 -metrics
//	gridql -server http://host:9410 -loadstats
//
// -explain prints the routing decision a query would take — route class,
// cache state, chosen member databases or peers, relay tier, budgets —
// without executing it (the system.explain method). -slow lists the
// server's slow-query ring (system.slowqueries): the queries over the
// server's -slow-threshold, with per-phase timings and their captured
// plans. -metrics dumps the unified metrics snapshot (system.metrics);
// the same registry is scraped as Prometheus text at the server's
// /metrics endpoint. -loadstats shows the admission-control picture
// (system.loadstats): the in-flight gate's occupancy and queue, the
// admitted/queued/shed totals, and the per-tenant breakdown — who is
// being admitted, who is being shed, and who holds open cursors and
// streamed bytes against their session quotas.
//
// -stream pages the result through a server-side cursor (the
// system.cursor.open/fetch/close methods) instead of one materialized
// response: rows print as chunks of at most -fetch-size arrive, neither
// side ever buffers more than one chunk, and interrupting the client (or
// letting the cursor idle past the server's TTL) cancels the producing
// query on the server. When the queried table lives on *another* JClarens
// server, the contacted server relays that peer's cursor page by page, so
// the -fetch-size bound holds on every hop of the federation — no server
// on the path materializes the scan. -cursors shows both sides of that
// traffic: the cursors this server serves (open/opened/fetches/rows/
// reaped) and the relays it runs onto peers (relay_opens/relay_fetches/
// relay_rows/relay_fallbacks).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"gridrdb/internal/clarens"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/sqlengine"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9410", "JClarens server URL")
	user := flag.String("user", "", "login user (for closed servers)")
	password := flag.String("password", "", "login password")
	tables := flag.Bool("tables", false, "list logical tables and exit")
	schema := flag.String("schema", "", "print a table's schema and exit")
	cache := flag.Bool("cache", false, "print the server's query-result cache stats and exit")
	cacheFlush := flag.Bool("cache-flush", false, "drop the server's query-result cache and exit")
	cursors := flag.Bool("cursors", false, "print the server's streaming-cursor stats and exit")
	explain := flag.Bool("explain", false, "print the query's routing decision without executing it")
	slow := flag.Bool("slow", false, "print the server's slow-query log and exit")
	slowN := flag.Int("n", 0, "with -slow, print at most this many entries (0 = all)")
	metrics := flag.Bool("metrics", false, "print the server's unified metrics snapshot and exit")
	loadstats := flag.Bool("loadstats", false, "print the server's admission-control and per-tenant load stats and exit")
	stream := flag.Bool("stream", false, "page the result through a server-side cursor instead of one materialized response")
	fetchSize := flag.Int("fetch-size", 256, "rows per cursor fetch with -stream (server clamps to its maximum)")
	timeout := flag.Duration("timeout", 0, "abandon the call after this long (0 = no deadline); the server cancels the query's backend work")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c := clarens.NewClient(*server)
	if *user != "" {
		if err := c.LoginContext(ctx, *user, *password); err != nil {
			log.Fatalf("gridql: login: %v", err)
		}
	}

	switch {
	case *cache:
		res, err := c.CallContext(ctx, "system.cachestats")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("query-result cache enabled=%v\n", m["enabled"])
		for _, k := range []string{"entries", "bytes", "hits", "misses", "coalesced", "evictions", "expirations", "invalidations", "rejected"} {
			fmt.Printf("  %-14s %v\n", k, m[k])
		}
	case *cacheFlush:
		res, err := c.CallContext(ctx, "system.cacheflush")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		fmt.Printf("dropped %v cached entries\n", res)
	case *cursors:
		res, err := c.CallContext(ctx, "system.cursorstats")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Println("streaming cursors (served)")
		for _, k := range []string{"open", "opened", "fetches", "rows", "reaped"} {
			fmt.Printf("  %-15s %v\n", k, m[k])
		}
		fmt.Println("cursor relays onto peers (outbound)")
		for _, k := range []string{"relay_opens", "relay_fetches", "relay_rows", "relay_fallbacks"} {
			v, ok := m[k]
			if !ok {
				v = int64(0) // pre-relay server: counters not reported
			}
			fmt.Printf("  %-15s %v\n", k, v)
		}
	case *metrics:
		res, err := c.CallContext(ctx, "system.metrics")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-60s %v\n", k, m[k])
		}
	case *loadstats:
		res, err := c.CallContext(ctx, "system.loadstats")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("admission control enabled=%v\n", m["enabled"])
		for _, k := range []string{"max_inflight", "queue_cap", "inflight", "queued", "admitted_immediate", "admitted_queued", "shed", "cancelled", "session_max_cursors", "session_max_bytes"} {
			fmt.Printf("  %-20s %v\n", k, m[k])
		}
		tenants, _ := m["tenants"].([]interface{})
		for _, ti := range tenants {
			t, ok := ti.(map[string]interface{})
			if !ok {
				continue
			}
			fmt.Printf("tenant %v (weight %v)\n", t["tenant"], t["weight"])
			for _, k := range []string{"admitted_immediate", "admitted_queued", "shed", "cancelled", "queued_ms", "quota_denied_cursors", "quota_denied_bytes", "sessions", "open_cursors", "streamed_bytes"} {
				fmt.Printf("  %-20s %v\n", k, t[k])
			}
		}
	case *slow:
		args := []interface{}{}
		if *slowN > 0 {
			args = append(args, int64(*slowN))
		}
		res, err := c.CallContext(ctx, "system.slowqueries", args...)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("slow-query log: threshold %vms, %v captured lifetime (ring capacity %v)\n",
			m["threshold_ms"], m["total"], m["capacity"])
		entries, _ := m["entries"].([]interface{})
		for _, ei := range entries {
			e, ok := ei.(map[string]interface{})
			if !ok {
				continue
			}
			fmt.Printf("\n[%v] %.1fms via %v  rows=%v bytes=%v\n",
				e["query_id"], e["duration_ms"], e["route"], e["rows"], e["bytes"])
			fmt.Printf("  sql: %v\n", e["sql"])
			if ph, ok := e["phases_ms"].(map[string]interface{}); ok {
				fmt.Printf("  phases: parse=%.1fms route=%.1fms backend=%.1fms stream=%.1fms\n",
					ph["parse"], ph["route"], ph["backend"], ph["stream"])
			}
			if errStr, ok := e["error"]; ok {
				fmt.Printf("  error: %v\n", errStr)
			}
			if ex, ok := e["explain"].(map[string]interface{}); ok {
				printExplain(ex, "  ")
			}
		}
	case *explain:
		query := strings.TrimSpace(strings.Join(flag.Args(), " "))
		if query == "" {
			log.Fatal("gridql: -explain needs a query")
		}
		res, err := c.CallContext(ctx, "system.explain", query)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m, ok := res.(map[string]interface{})
		if !ok {
			log.Fatalf("gridql: unexpected explain response %T", res)
		}
		printExplain(m, "")
	case *tables:
		res, err := c.CallContext(ctx, "dataaccess.tables")
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		for _, t := range res.([]interface{}) {
			fmt.Println(t)
		}
	case *schema != "":
		res, err := c.CallContext(ctx, "dataaccess.schema", *schema)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		m := res.(map[string]interface{})
		fmt.Printf("table %v (replicas: %v)\n", m["table"], m["replicas"])
		cols, _ := m["columns"].([]interface{})
		for _, ci := range cols {
			col := ci.(map[string]interface{})
			fmt.Printf("  %-24v %-12v nullable=%v key=%v\n", col["name"], col["kind"], col["nullable"], col["key"])
		}
	case *stream:
		query := strings.TrimSpace(strings.Join(flag.Args(), " "))
		if query == "" {
			log.Fatal("gridql: -stream needs a query")
		}
		if err := streamQuery(ctx, c, query, *fetchSize); err != nil {
			log.Fatalf("gridql: %v", err)
		}
	default:
		query := strings.TrimSpace(strings.Join(flag.Args(), " "))
		if query == "" {
			log.Fatal("gridql: no query given (or use -tables / -schema)")
		}
		res, err := c.CallContext(ctx, "dataaccess.query", query)
		if clarens.IsCancelled(err) {
			if *timeout > 0 {
				log.Fatalf("gridql: query abandoned after -timeout %s (the server cancels its backend work): %v", *timeout, err)
			}
			log.Fatalf("gridql: query cancelled server-side (its request deadline expired): %v", err)
		}
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		rs, err := dataaccess.DecodeResult(res)
		if err != nil {
			log.Fatalf("gridql: %v", err)
		}
		fmt.Print(sqlengine.FormatResult(rs))
		m := res.(map[string]interface{})
		fmt.Printf("(%d rows via %v, %v server(s))\n", len(rs.Rows), m["route"], m["servers"])
	}
}

// printExplain renders a routing description: the headline route first,
// then every other key sorted, nested maps and lists indented under it.
func printExplain(m map[string]interface{}, indent string) {
	if route, ok := m["route"]; ok {
		fmt.Printf("%sroute: %v (cached=%v)\n", indent, route, m["cached"])
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		if k == "route" || k == "cached" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := m[k].(type) {
		case map[string]interface{}:
			fmt.Printf("%s%s:\n", indent, k)
			inner := make([]string, 0, len(v))
			for ik := range v {
				inner = append(inner, ik)
			}
			sort.Strings(inner)
			for _, ik := range inner {
				fmt.Printf("%s  %s: %v\n", indent, ik, v[ik])
			}
		case []interface{}:
			fmt.Printf("%s%s: %v\n", indent, k, v)
		default:
			fmt.Printf("%s%s: %v\n", indent, k, v)
		}
	}
}

// streamQuery pages a query through the server-side cursor protocol,
// printing rows tab-separated as each chunk arrives. The cursor is closed
// on every exit path so an aborted run does not leave the server holding
// a live backend query until its TTL.
func streamQuery(ctx context.Context, c *clarens.Client, query string, fetchSize int) error {
	res, err := c.CallContext(ctx, "system.cursor.open", query)
	if err != nil {
		return err
	}
	m, ok := res.(map[string]interface{})
	if !ok {
		return fmt.Errorf("unexpected cursor.open response %T", res)
	}
	id, _ := m["cursor"].(string)
	if id == "" {
		return fmt.Errorf("cursor.open returned no cursor id")
	}
	defer c.Call("system.cursor.close", id)

	cols, _ := m["columns"].([]interface{})
	names := make([]string, len(cols))
	for i, ci := range cols {
		names[i], _ = ci.(string)
	}
	fmt.Println(strings.Join(names, "\t"))
	total := 0
	for {
		res, err := c.CallContext(ctx, "system.cursor.fetch", id, int64(fetchSize))
		if err != nil {
			return err
		}
		chunk, err := dataaccess.DecodeChunk(res)
		if err != nil {
			return err
		}
		for _, row := range chunk.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				if v.IsNull() {
					cells[i] = "NULL"
				} else {
					cells[i] = v.String()
				}
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		total += len(chunk.Rows)
		if chunk.Done {
			break
		}
	}
	fmt.Printf("(%d rows streamed via %v, %v server(s), fetch size %d)\n", total, m["route"], m["servers"], fetchSize)
	return nil
}
