// Command benchrepro regenerates every table and figure of the paper's
// evaluation section (§5) and prints them in the paper's format, alongside
// the published values for shape comparison.
//
// Usage:
//
//	benchrepro [-exp fig4|fig5|cache|stream|wire|relay|join|obsv|load|table1|fig6|all] [-scale small|paper] [-repeats N]
//
// The "paper" scale uses the simulated 100 Mbps LAN profile and the
// paper's testbed dimensions (6 databases, ~80k rows, ~1700 tables,
// per-query database connections); "small" runs in milliseconds with no
// simulated latency and is meant for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"gridrdb/internal/experiments"
	"gridrdb/internal/netsim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig4, fig5, cache, stream, wire, relay, join, obsv, load, table1, fig6, all")
	scale := flag.String("scale", "small", "testbed scale: small (CI) or paper (simulated LAN, full size)")
	repeats := flag.Int("repeats", 3, "measurement repeats per point")
	cacheOut := flag.String("cache-out", "BENCH_cache.json", "path of the cache datapoint file (\"\" disables)")
	streamOut := flag.String("stream-out", "BENCH_stream.json", "path of the streaming datapoint file (\"\" disables)")
	streamRows := flag.Int("stream-rows", 0, "row count of the streaming experiment's scan table (0 = scale default)")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "path of the wire-codec datapoint file (\"\" disables)")
	wireRows := flag.Int("wire-rows", 0, "row count of the wire-codec experiment's result set (0 = scale default)")
	relayOut := flag.String("relay-out", "BENCH_relay.json", "path of the cursor-relay datapoint file (\"\" disables)")
	relayRows := flag.Int("relay-rows", 0, "base row count of the relay experiment's remote table (0 = scale default; the sweep also measures 10x this)")
	joinOut := flag.String("join-out", "BENCH_join.json", "path of the pipelined-join datapoint file (\"\" disables)")
	joinRows := flag.Int("join-rows", 0, "base fact-table row count of the join experiment (0 = scale default; the sweep also measures 10x this)")
	obsvOut := flag.String("obsv-out", "BENCH_obsv.json", "path of the observability-overhead datapoint file (\"\" disables)")
	obsvIters := flag.Int("obsv-iters", 0, "queries per repeat of the observability experiment (0 = scale default)")
	loadOut := flag.String("load-out", "BENCH_load.json", "path of the admission-control datapoint file (\"\" disables)")
	loadPhaseMs := flag.Int("load-phase-ms", 0, "wall-clock budget of each load phase in ms (0 = scale default)")
	loadProfile := flag.String("load-profile", "local", "netsim link profile of the load experiment: local, lan100, wan")
	flag.Parse()

	profile := netsim.Local
	opts := experiments.SmallDeploy()
	if *scale == "paper" {
		profile = netsim.LAN100
		opts = experiments.PaperDeploy()
	}

	run := func(name string, f func() error) {
		switch *exp {
		case "all", name:
			if err := f(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}

	run("fig4", func() error { return runFig4(profile) })
	run("fig5", func() error { return runFig5(profile) })
	run("cache", func() error { return runCache(opts, *repeats, *cacheOut) })
	run("stream", func() error {
		rows := *streamRows
		if rows == 0 {
			rows = 5000
			if *scale == "paper" {
				rows = 100000
			}
		}
		return runStream(rows, *repeats, *streamOut)
	})
	run("wire", func() error {
		rows := *wireRows
		if rows == 0 {
			rows = 2000
			if *scale == "paper" {
				rows = 20000
			}
		}
		return runWire(rows, *repeats, *wireOut)
	})
	run("relay", func() error {
		rows := *relayRows
		if rows == 0 {
			rows = 2000
			if *scale == "paper" {
				rows = 20000
			}
		}
		return runRelay(rows, *repeats, *relayOut)
	})
	run("join", func() error {
		rows := *joinRows
		if rows == 0 {
			rows = 2000
			if *scale == "paper" {
				rows = 20000
			}
		}
		return runJoin(rows, *repeats, *joinOut)
	})
	run("obsv", func() error {
		iters := *obsvIters
		if iters == 0 {
			iters = 1000
			if *scale == "paper" {
				iters = 5000
			}
		}
		return runObsv(iters, *repeats, *obsvOut)
	})
	run("load", func() error {
		phaseMs := *loadPhaseMs
		if phaseMs == 0 {
			phaseMs = 1000
			if *scale == "paper" {
				phaseMs = 4000
			}
		}
		return runLoad(*loadProfile, phaseMs, *repeats, *loadOut)
	})

	var dep *experiments.Deployment
	needDeploy := *exp == "all" || *exp == "table1" || *exp == "fig6"
	if needDeploy {
		fmt.Fprintf(os.Stderr, "building stage-3 deployment (scale=%s)...\n", *scale)
		var err error
		dep, err = experiments.Deploy(opts)
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
		defer dep.Close()
	}
	run("table1", func() error { return runTable1(dep, *repeats) })
	run("fig6", func() error { return runFig6(dep, *repeats) })
	if *exp == "wan" {
		if err := runWAN(*repeats); err != nil {
			log.Fatalf("wan: %v", err)
		}
	}
}

// runWAN is the §6 future-work extension: the Table-1 query shapes
// re-measured across LAN and WAN link profiles.
func runWAN(repeats int) error {
	fmt.Println("== Extension: LAN vs WAN query distribution (paper §6 future work) ==")
	rows, err := experiments.RunWAN([]*netsim.Profile{netsim.Local, netsim.LAN100, netsim.WAN}, 2000, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %16s\n", "profile", "distributed", "response (ms)")
	for _, r := range rows {
		dist := "No"
		if r.Distributed {
			dist = "Yes"
		}
		fmt.Printf("%10s %14s %16.1f\n", r.Profile, dist, r.ResponseMS)
	}
	fmt.Println("expected shape: WAN >> LAN >> local; the distributed penalty grows with link cost")
	fmt.Println()
	return nil
}

// runCache measures the cold-versus-warm federated query on a
// cache-enabled deployment (the qcache subsystem's headline number) and
// writes the datapoint to outPath so the perf trajectory is tracked from
// PR to PR.
func runCache(opts experiments.DeployOptions, repeats int, outPath string) error {
	fmt.Println("== Extension: query-result cache, cold vs warm federated query ==")
	row, err := experiments.RunCache(opts, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %14s %10s %8s\n", "cold (ns)", "warm (ns)", "speedup", "hits")
	fmt.Printf("%12d %14d %9.1fx %8d\n", row.ColdNsOp, row.WarmNsOp, row.Speedup, row.Hits)
	fmt.Println("expected shape: warm >= 10x faster than cold (cache hit skips the scatter-gather)")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "federated_query_cache",
		"query":     experiments.CacheQuery,
		"repeats":   repeats,
		"result":    row,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runStream measures a large unfiltered scan through the materializing
// query path versus the streaming cursor path (time-to-first-row and
// allocation footprint) and writes the datapoint to outPath.
func runStream(rows, repeats int, outPath string) error {
	fmt.Println("== Extension: result streaming, materialized vs cursor scan ==")
	row, err := experiments.RunStream(rows, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %16s %16s %16s\n", "path", "total (ns)", "first row (ns)", "alloc (bytes)")
	fmt.Printf("%10s %16d %16d %16d\n", "full", row.MaterializedNsOp, row.MaterializedFirstRowNs, row.MaterializedAllocBytes)
	fmt.Printf("%10s %16d %16d %16d\n", "stream", row.StreamNsOp, row.StreamFirstRowNs, row.StreamAllocBytes)
	fmt.Printf("first-row speedup: %.1fx over %d rows\n", row.FirstRowSpeedup, row.Rows)
	fmt.Println("expected shape: streamed first row arrives before the materialized result completes;")
	fmt.Println("streamed allocation stays flat in the consumer while materialization grows with row count")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "streamed_scan",
		"query":     experiments.StreamQuery,
		"repeats":   repeats,
		"result":    row,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runWire measures the row marshal/unmarshal round trip through the boxed
// reference codec, the zero-boxing XML path and the negotiated binary
// framing — all in the same run — plus an end-to-end call per framing, and
// writes the datapoint to outPath.
func runWire(rows, repeats int, outPath string) error {
	fmt.Println("== Extension: wire row codec, boxed vs zero-boxing vs binary framing ==")
	row, err := experiments.RunWire(rows, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %14s %14s %14s %14s\n", "path", "ns/op", "allocs/op", "B/op", "rows/sec")
	fmt.Printf("%8s %14d %14d %14d %14.0f\n", "boxed", row.BoxedNsOp, row.BoxedAllocsOp, row.BoxedBytesOp, row.BoxedRowsPerSec)
	fmt.Printf("%8s %14d %14d %14d %14.0f\n", "xml", row.XMLNsOp, row.XMLAllocsOp, row.XMLBytesOp, row.XMLRowsPerSec)
	fmt.Printf("%8s %14d %14d %14d %14.0f\n", "binary", row.BinNsOp, row.BinAllocsOp, row.BinBytesOp, row.BinRowsPerSec)
	fmt.Printf("alloc reduction vs boxed: xml %.1fx, binary %.1fx; doc bytes: xml %d, binary %d\n",
		row.XMLAllocReduction, row.BinAllocReduction, row.XMLDocBytes, row.BinDocBytes)
	fmt.Printf("end-to-end call: xml %d ns/op (%d allocs), binary %d ns/op (%d allocs)\n",
		row.CallXMLNsOp, row.CallXMLAllocsOp, row.CallBinNsOp, row.CallBinAllocsOp)
	fmt.Println("expected shape: binary (the negotiated server-to-server framing) >=2x fewer allocs/op;")
	fmt.Println("xml improves but stays tokenizer-bound (~13 allocs per element is the encoding/xml floor)")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "wire_row_codec",
		"rows":      row.Rows,
		"repeats":   repeats,
		"result":    row,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runRelay measures a federated scan of a remote table through the
// materialized whole-result forward versus the cursor-to-cursor relay, at
// the base row count and at 10x, and writes both datapoints to outPath.
// The relay's claim is that the forwarder's peak live heap stays roughly
// flat as the remote table grows; the materialized forward's grows with
// it. A differential check asserts both paths return byte-identical rows.
func runRelay(rows, repeats int, outPath string) error {
	fmt.Println("== Extension: federated streaming, materialized forward vs cursor relay ==")
	points := make([]experiments.RelayRow, 0, 2)
	for _, n := range []int{rows, 10 * rows} {
		row, err := experiments.RunRelay(n, repeats)
		if err != nil {
			return err
		}
		points = append(points, row)
	}
	fmt.Printf("%10s %16s %20s %16s %20s %10s\n", "rows", "forward (ns)", "fwd peak (bytes)", "relay (ns)", "relay peak (bytes)", "identical")
	for _, r := range points {
		fmt.Printf("%10d %16d %20d %16d %20d %10v\n", r.Rows, r.ForwardNsOp, r.ForwardPeakBytes, r.RelayNsOp, r.RelayPeakBytes, r.Identical)
	}
	if points[0].RelayPeakBytes > 0 {
		fmt.Printf("relay peak growth over 10x rows: %.2fx (forward: %.2fx)\n",
			float64(points[1].RelayPeakBytes)/float64(points[0].RelayPeakBytes),
			float64(points[1].ForwardPeakBytes)/float64(max(points[0].ForwardPeakBytes, 1)))
	}
	fmt.Println("expected shape: the forwarder's peak heap grows ~10x with the materialized forward")
	fmt.Println("and stays roughly flat with the relay (bounded by the relay fetch size)")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "cursor_relay",
		"query":     experiments.RelayQuery,
		"repeats":   repeats,
		"result":    points,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runJoin measures a decomposed two-source federated join through the
// legacy materialize-into-scratch integration versus the pipelined
// streaming operators, at the base fact-table row count and at 10x, and
// writes both datapoints to outPath. The operators' claim is that
// time-to-first-row and the integrator's peak live heap stay roughly flat
// as the fact table grows (bounded by the hash build side), where the
// scratch path grows with it. A differential check asserts both paths
// return byte-identical row sets.
func runJoin(rows, repeats int, outPath string) error {
	fmt.Println("== Extension: federated join, scratch integration vs pipelined operators ==")
	points := make([]experiments.JoinRow, 0, 2)
	for _, n := range []int{rows, 10 * rows} {
		row, err := experiments.RunJoin(n, repeats)
		if err != nil {
			return err
		}
		points = append(points, row)
	}
	fmt.Printf("operator: %s\n", points[0].Operator)
	fmt.Printf("%10s %18s %20s %18s %20s %10s\n", "rows", "scratch ttfr (ns)", "scratch peak (bytes)", "piped ttfr (ns)", "piped peak (bytes)", "identical")
	for _, r := range points {
		fmt.Printf("%10d %18d %20d %18d %20d %10v\n", r.Rows, r.ScratchTTFRNs, r.ScratchPeakBytes, r.PipelinedTTFRNs, r.PipelinedPeakBytes, r.Identical)
	}
	if points[0].PipelinedTTFRNs > 0 {
		fmt.Printf("pipelined ttfr growth over 10x rows: %.2fx (scratch: %.2fx)\n",
			float64(points[1].PipelinedTTFRNs)/float64(points[0].PipelinedTTFRNs),
			float64(points[1].ScratchTTFRNs)/float64(max(points[0].ScratchTTFRNs, 1)))
	}
	fmt.Println("expected shape: pipelined time-to-first-row and peak heap stay roughly flat as the")
	fmt.Println("fact table grows; the scratch path's grow with it (it materializes before emitting)")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "pipelined_join",
		"query":     experiments.JoinQuery,
		"repeats":   repeats,
		"result":    points,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runObsv measures the same routed query with observability tracking off
// (Config.DisableObsv) and fully armed (discard logger, per-route
// histograms, slow capture on every query), and writes the datapoint to
// outPath. The subsystem's acceptance bar is overhead under 5%.
func runObsv(iters, repeats int, outPath string) error {
	fmt.Println("== Extension: observability overhead, instrumented vs no-op query path ==")
	row, err := experiments.RunObsv(0, iters, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%16s %18s %12s %14s\n", "baseline (ns)", "instrumented (ns)", "overhead", "slow captured")
	fmt.Printf("%16d %18d %11.2f%% %14d\n", row.BaselineNsOp, row.InstrumentedNsOp, row.OverheadPct, row.SlowCaptured)
	fmt.Println("expected shape: overhead stays under 5% (atomic counters + one clock read per phase)")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "observability_overhead",
		"query":     experiments.ObsvQuery,
		"repeats":   repeats,
		"result":    row,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

// runLoad measures goodput and tail latency of the admission-controlled
// server under a closed-loop mixed workload at capacity and at 2x
// capacity, and writes the graceful-degradation datapoint to outPath.
func runLoad(profileName string, phaseMs, repeats int, outPath string) error {
	fmt.Println("== Extension: admission control, goodput under 2x overload ==")
	row, err := experiments.RunLoad(profileName, phaseMs, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("gate: %d in flight, queue %d, deadline %.0fms, profile %s\n",
		row.MaxInFlight, row.QueueCap, row.AdmissionTimeoutMs, row.Profile)
	fmt.Printf("%10s %10s %14s %10s %10s %10s %10s\n",
		"phase", "sessions", "goodput (q/s)", "shed", "p50 (ms)", "p99 (ms)", "p999 (ms)")
	for _, p := range []struct {
		name string
		ph   experiments.LoadPhase
	}{{"capacity", row.Capacity}, {"overload", row.Overload}} {
		fmt.Printf("%10s %10d %14.0f %10d %10.2f %10.2f %10.2f\n",
			p.name, p.ph.Sessions, p.ph.GoodputOpsSec, p.ph.Shed, p.ph.P50Ms, p.ph.P99Ms, p.ph.P999Ms)
	}
	fmt.Printf("goodput ratio (overload/capacity): %.2f; shed fault distinct: %v; queued grants: %d\n",
		row.GoodputRatio, row.ShedFaultOK, row.AdmittedQueued)
	fmt.Printf("leaked goroutines: %d; cursors left open: %d\n", row.LeakedGoroutines, row.OpenCursorsAfter)
	fmt.Println("expected shape: at 2x offered load the admitted queries keep >= 0.8x capacity goodput,")
	fmt.Println("the excess is shed with FaultOverloaded (not queued unboundedly), and nothing leaks")
	fmt.Println()
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(map[string]interface{}{
		"benchmark": "admission_load",
		"queries": []string{
			experiments.LoadCachedQuery,
			experiments.LoadStreamQuery,
			experiments.LoadFederatedQuery,
		},
		"repeats": repeats,
		"result":  row,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	return nil
}

func runFig4(profile *netsim.Profile) error {
	fmt.Println("== Figure 4: Performance of data extraction and loading by streaming ==")
	fmt.Println("   (sources -> staging file -> data warehouse)")
	rows, err := experiments.RunFig4(experiments.Fig4Sizes, profile)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %8s %18s %16s\n", "size (kB)", "rows", "extraction (s)", "loading (s)")
	for _, r := range rows {
		fmt.Printf("%12.3f %8d %18.4f %16.4f\n", r.SizeKB, r.Rows, r.ExtractSec, r.LoadSec)
	}
	fmt.Println("paper shape: both series grow ~linearly with size; loading lies above extraction")
	fmt.Println("paper x-axis: 0.397 ... 207.866 kB; loading reached ~15 s at 207 kB on the 2005 testbed")
	fmt.Println()
	return nil
}

func runFig5(profile *netsim.Profile) error {
	fmt.Println("== Figure 5: Views extracted from the warehouse and materialized into data marts ==")
	rows, err := experiments.RunFig5(experiments.Fig5Sizes, profile)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %8s %18s %16s\n", "size (kB)", "rows", "extraction (s)", "loading (s)")
	for _, r := range rows {
		fmt.Printf("%12.3f %8d %18.4f %16.4f\n", r.SizeKB, r.Rows, r.ExtractSec, r.LoadSec)
	}
	fmt.Println("paper shape: ~linear in size; loading above extraction; x-axis up to ~70 kB (~80 s loading)")
	fmt.Println()
	return nil
}

func runTable1(d *experiments.Deployment, repeats int) error {
	fmt.Println("== Table 1: Query Response Time ==")
	rows, err := experiments.RunTable1(d, repeats)
	if err != nil {
		return err
	}
	paper := []float64{38, 487.5, 594}
	fmt.Printf("%10s %14s %16s %10s %14s\n", "#servers", "distributed", "response (ms)", "#tables", "paper (ms)")
	for i, r := range rows {
		dist := "No"
		if r.Distributed {
			dist = "Yes"
		}
		fmt.Printf("%10d %14s %16.1f %10d %14.1f\n", r.Servers, dist, r.ResponseMS, r.Tables, paper[i])
	}
	if rows[0].ResponseMS > 0 {
		fmt.Printf("distributed/local ratio: %.1fx (paper: %.1fx; >10x expected)\n",
			rows[1].ResponseMS/rows[0].ResponseMS, paper[1]/paper[0])
	}
	fmt.Println()
	return nil
}

func runFig6(d *experiments.Deployment, repeats int) error {
	fmt.Println("== Figure 6: Response time versus number of rows requested ==")
	rows, err := experiments.RunFig6(d, experiments.Fig6RowCounts, repeats)
	if err != nil {
		return err
	}
	fmt.Printf("%16s %16s\n", "rows requested", "response (ms)")
	for _, r := range rows {
		fmt.Printf("%16d %16.1f\n", r.RowsRequested, r.ResponseMS)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.ResponseMS > 0 {
		fmt.Printf("growth %d->%d rows: %.2fx (paper: ~300->700 ms, 2.3x; linear with large intercept)\n",
			first.RowsRequested, last.RowsRequested, last.ResponseMS/first.ResponseMS)
	}
	fmt.Println()
	return nil
}
