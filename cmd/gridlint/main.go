// Command gridlint runs the grid's custom static-analysis suite
// (internal/lint) over the given package patterns and fails if any
// invariant is violated:
//
//	go run ./cmd/gridlint ./...
//
// Each finding prints as file:line:col: analyzer: message. A finding may
// be suppressed only by an explicit `//lint:ignore <analyzer> <reason>`
// directive on or immediately above the offending line; the reason is
// mandatory and unused directives are themselves errors, so the
// suppression list stays exact. The rules, the production failures they
// prevent, and their escape hatches are documented in
// docs/INVARIANTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridrdb/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gridlint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the gridrdb invariant checkers (see docs/INVARIANTS.md).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		os.Exit(2)
	}

	analyzers := lint.All()
	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
