// Command gridlint runs the grid's custom static-analysis suite
// (internal/lint) over the given package patterns and fails if any
// invariant is violated:
//
//	go run ./cmd/gridlint ./...
//
// The suite has two layers: per-package analyzers, and module-wide
// analyzers (lockorder, goroleak, wireconform) that run once over a
// call graph of everything loaded. Each finding prints as
// file:line:col: analyzer: message, or as one JSON object per line
// under -json:
//
//	{"file":"internal/x/y.go","line":12,"col":3,"analyzer":"goroleak","message":"..."}
//
// A finding may be suppressed two ways:
//
//   - An explicit `//lint:ignore <analyzer> <reason>` directive on or
//     immediately above the offending line; the reason is mandatory and
//     unused directives are themselves errors, so the suppression list
//     stays exact. This is the durable escape hatch.
//   - A baseline file (-baseline): findings already recorded there are
//     filtered out, so CI fails only on NEW findings. Matching ignores
//     line numbers (a baselined finding does not reappear because code
//     above it moved); it is keyed on (file, analyzer, message), as a
//     multiset. Regenerate with -write-baseline after deliberately
//     accepting current findings. The baseline is for adopting a new
//     analyzer over existing debt; prefer fixing or //lint:ignore.
//
// The rules, the production failures they prevent, and their escape
// hatches are documented in docs/INVARIANTS.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"gridrdb/internal/lint"
)

// finding is the -json / baseline record. Field order is part of the
// output contract (the CI problem matcher and the committed baseline
// both read it), so it only grows, never reorders.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineKey ignores position-within-file: code moving above a
// baselined finding must not resurrect it.
func (f finding) baselineKey() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON, one object per line")
	baselinePath := flag.String("baseline", "", "filter out findings recorded in this baseline file; fail only on new ones")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gridlint [-list] [-json] [-baseline file | -write-baseline file] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the gridrdb invariant checkers (see docs/INVARIANTS.md).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.AllModule() {
			fmt.Printf("%-16s [module] %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root := moduleRoot(wd)

	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fatal(err)
	}

	suite := lint.Suite{Analyzers: lint.All(), Module: lint.AllModule()}
	// Wireconform's "documented but never registered" direction is only
	// sound when every package in the module was loaded — a partial
	// pattern (e.g. ./... from a subdirectory) would blame methods whose
	// registering package was simply not in the load.
	suite.FullModule = wd == root && len(patterns) == 1 && patterns[0] == "./..."
	const wireSpecRel = "docs/WIRE.md"
	if spec, err := os.ReadFile(filepath.Join(root, wireSpecRel)); err == nil {
		suite.WireSpec = spec
		suite.WireSpecPath = wireSpecRel
	}
	diags, err := lint.RunSuite(pkgs, suite)
	if err != nil {
		fatal(err)
	}

	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gridlint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	suppressed := 0
	if *baselinePath != "" {
		old, err := loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		kept := findings[:0]
		for _, f := range findings {
			if old[f.baselineKey()] > 0 {
				old[f.baselineKey()]--
				suppressed++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
	}

	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(f); err != nil {
				fatal(err)
			}
		} else {
			fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	out.Flush()

	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d baselined finding(s) suppressed\n", suppressed)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridlint:", err)
	os.Exit(2)
}

// moduleRoot resolves the enclosing module's directory so findings and
// the wire spec use stable module-relative paths no matter where
// gridlint was invoked. Falls back to wd outside a module.
func moduleRoot(wd string) string {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = wd
	out, err := cmd.Output()
	gomod := strings.TrimSpace(string(out))
	if err != nil || gomod == "" || gomod == os.DevNull {
		return wd
	}
	return filepath.Dir(gomod)
}

func relPath(root, name string) string {
	if !filepath.IsAbs(name) {
		return filepath.ToSlash(name)
	}
	rel, err := filepath.Rel(root, name)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}

// loadBaseline reads a JSONL baseline into a multiset: the same
// (file, analyzer, message) may legitimately occur on several lines.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	counts := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var f finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, fmt.Errorf("baseline %s:%d: %w", path, i+1, err)
		}
		counts[f.baselineKey()]++
	}
	return counts, nil
}

func saveBaseline(path string, findings []finding) error {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, f := range findings {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
