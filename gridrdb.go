// Package gridrdb is a Go reproduction of "Heterogeneous Relational
// Databases for a Grid-enabled Analysis Environment" (Ali et al., ICPP
// Workshops 2005): middleware that gives Grid clients a single virtual
// view over geographically distributed, heterogeneous relational
// databases.
//
// The package is a facade over the building blocks in internal/:
//
//   - sqlengine: an embedded relational engine instantiated per vendor
//     dialect (Oracle, MySQL, MS-SQL, SQLite) — the substrate standing in
//     for the real database products;
//   - warehouse: the ETL pipeline (normalized sources -> denormalized star
//     warehouse) and data-mart materialization;
//   - unity + poolral: the two query-routing modules of the data access
//     layer; unity scatter-gathers per-source sub-queries over a bounded
//     parallel worker pool, so federated latency is the max over sources
//     rather than the sum;
//   - qcache: the query-result cache of the data access layer — a
//     sharded, TTL'd LRU with singleflight collapsing of concurrent
//     identical queries and (source, table) dependency fingerprints, so a
//     schema change or mart re-materialization evicts exactly the
//     dependent entries (enable per server with ServerConfig.CacheSize;
//     inspect with the system.cachestats XML-RPC method);
//   - rls: the replica location service;
//   - clarens + dataaccess: the JClarens web-service interface and the
//     routing/integration core. Result marshalling runs on a zero-boxing
//     wire path — rows encode cell-direct into pooled buffers and decode
//     by a streaming token walk — and server↔server transfers (remote
//     forwards, cursor relays) negotiate a compact binary row framing via
//     system.capabilities, falling back to plain XML-RPC so simple
//     third-party clients keep working (disable per server with
//     ServerConfig.DisableBinaryRows).
//
// Queries are answered materialized (Server.Query) or as incremental
// row streams (Server.QueryStream); streamed queries that route to
// another server ride a cursor-to-cursor relay, so per-scan memory is
// bounded by a fetch size on every hop of the federation.
//
// A Grid value assembles a full deployment: one RLS catalog plus any
// number of JClarens server instances, each hosting data marts. See
// examples/quickstart for a complete walk-through, docs/ARCHITECTURE.md
// for the layer map and data flows, and docs/WIRE.md for the wire
// protocol third-party clients speak.
package gridrdb

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"gridrdb/internal/clarens"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/netsim"
	"gridrdb/internal/rls"
	"gridrdb/internal/sqldriver"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/warehouse"
	"gridrdb/internal/xspec"
)

// Re-exported value types so callers rarely need internal imports.
type (
	// Value is one SQL scalar.
	Value = sqlengine.Value
	// Row is one tuple.
	Row = sqlengine.Row
	// ResultSet is a materialized query result.
	ResultSet = sqlengine.ResultSet
	// Engine is one emulated database server.
	Engine = sqlengine.Engine
	// Dialect is a vendor SQL dialect.
	Dialect = sqlengine.Dialect
	// QueryResult is a routed query answer.
	QueryResult = dataaccess.QueryResult
	// StreamResult is a routed query answer delivered incrementally (see
	// Server.QueryStream).
	StreamResult = dataaccess.StreamResult
	// RowIter is an incremental row stream.
	RowIter = sqlengine.RowIter
	// SourceRef locates one member database.
	SourceRef = xspec.SourceRef
	// LowerSpec is a per-database XSpec document.
	LowerSpec = xspec.LowerSpec
)

// Vendor dialects.
var (
	Oracle = sqlengine.DialectOracle
	MySQL  = sqlengine.DialectMySQL
	MSSQL  = sqlengine.DialectMSSQL
	SQLite = sqlengine.DialectSQLite
	ANSI   = sqlengine.DialectANSI
)

// Value constructors.
var (
	Int    = sqlengine.NewInt
	Float  = sqlengine.NewFloat
	String = sqlengine.NewString
	Bool   = sqlengine.NewBool
	Null   = sqlengine.Null
)

// NewEngine creates an emulated database of the given vendor dialect and
// registers it for local:// DSN access.
func NewEngine(name string, d *Dialect) *Engine {
	e := sqlengine.NewEngine(name, d)
	sqldriver.RegisterEngine(e)
	return e
}

// GenerateXSpec introspects a live engine into its lower-level XSpec.
func GenerateXSpec(e *Engine) (*LowerSpec, error) {
	return xspec.Generate(e.Name(), e.Dialect().Name, e)
}

// FormatResult renders a result set as an aligned text table.
func FormatResult(rs *ResultSet) string { return sqlengine.FormatResult(rs) }

// ServerConfig configures one JClarens instance in a Grid.
type ServerConfig struct {
	// Name identifies the instance ("jclarens-tier2").
	Name string
	// Open disables authentication (the paper's test setup). When false,
	// Users must be non-empty and clients must log in.
	Open bool
	// Users holds login credentials for non-open servers.
	Users map[string]string
	// Addr is the listen address; "" means 127.0.0.1:0.
	Addr string
	// Profile simulates network costs for this server's remote calls.
	Profile *netsim.Profile
	// CacheSize enables the query-result cache when > 0 (entries held).
	// Cached answers are invalidated by the schema tracker and mart
	// refreshes; out-of-band backend writes are only bounded by CacheTTL.
	CacheSize int
	// CacheMaxBytes additionally bounds the cache by estimated resident
	// bytes (0 = entry count only). With a byte budget the cache also
	// refuses admission to any single result set larger than 1/8 of the
	// budget, and completed streamed queries under that cap are admitted
	// too.
	CacheMaxBytes int64
	// CacheTTL bounds cached-entry lifetime (0 = no expiry).
	CacheTTL time.Duration
	// CursorTTL bounds how long an idle server-side cursor (opened via
	// the system.cursor.* methods) survives between fetches before its
	// query is cancelled and its resources released. 0 selects the
	// default (2 minutes); < 0 disables reaping.
	CursorTTL time.Duration
	// RequestTimeout bounds each XML-RPC method call's execution server-
	// side (0 = none): the context handed to methods — and threaded into
	// every backend the query touches — carries this deadline in addition
	// to client-disconnect cancellation. Calls cut off by it fail with
	// the FaultCancelled XML-RPC fault code.
	RequestTimeout time.Duration
	// DisableBinaryRows turns off the negotiated binary row framing for
	// server↔server transfers in both directions: this server neither
	// advertises the row codec nor probes peers before forwarding.
	// Plain XML-RPC always remains accepted, so the switch only trades
	// speed, never interoperability.
	DisableBinaryRows bool
	// RelayFetchSize is how many rows each cursor-relay fetch pulls from a
	// remote peer when a streamed query routes there (0 = the server
	// default, 256; the peer clamps to its own maximum). It bounds this
	// server's buffering per federated stream.
	RelayFetchSize int
	// SourceBudget bounds each per-source operation of a federated query —
	// a remote forward, every relay page fetch, and each decomposed
	// sub-query of the local scatter-gather — independently of
	// RequestTimeout, so one stuck source cannot consume a whole request's
	// allowance. 0 applies no per-source bound.
	SourceBudget time.Duration
	// ScratchMaxBytes bounds each buffering streaming operator of a
	// decomposed federated query (hash-join build, external sort): past
	// it the operator spills to disk instead of growing the heap. 0
	// selects the default (64 MiB); negative disables spilling.
	ScratchMaxBytes int64
	// Logger receives the server's structured query log (slog records
	// carrying the query id on every line). nil discards all records.
	Logger *slog.Logger
	// SlowQueryThreshold enables the slow-query log: any query slower than
	// this is captured — with its routing plan and per-phase timings — into
	// a bounded ring served by system.slowqueries. 0 disables capture.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize caps the slow-query ring (0 = default, 64).
	SlowQueryLogSize int
	// DisableMetrics turns off per-query observability tracking (timings,
	// per-route histograms, slow capture) for benchmarking the bare query
	// path. The /metrics endpoint stays up; per-query series stop moving.
	DisableMetrics bool
	// MaxInFlight enables admission control when > 0: at most this many
	// queries execute or stream concurrently; arrivals past the cap queue
	// FIFO within their tenant's weight class, and are shed with the
	// FaultOverloaded XML-RPC fault when the queue fills or the queue
	// deadline expires. Per-tenant counters are served by
	// system.loadstats; admission series appear in /metrics as
	// gridrdb_admission_*. 0 leaves the gate off.
	MaxInFlight int
	// AdmissionQueue bounds how many queries may wait for a slot (0 =
	// 2 × MaxInFlight; < 0 disables queueing — saturated means shed).
	AdmissionQueue int
	// AdmissionTimeout is the queue deadline before a waiter is shed with
	// FaultOverloaded (0 = 5s; < 0 waits on the caller's context alone).
	AdmissionTimeout time.Duration
	// TenantWeights gives named users a relative share of the admission
	// queue's drain rate under backlog; unlisted users weigh 1.
	TenantWeights map[string]int
	// SessionMaxCursors caps server-side cursors concurrently open per
	// login session (0 = unlimited); opens past it shed with a
	// FaultOverloaded quota fault until one closes, drains or is reaped.
	SessionMaxCursors int
	// SessionMaxBytes caps estimated bytes streamed to one login session
	// over its lifetime (0 = unlimited); the budget resets when the
	// session ends. A mid-stream quota hit fails the stream loudly and
	// releases its backend resources, relay cursors included.
	SessionMaxBytes int64
}

// Server is one running JClarens instance: the data access service plus
// its XML-RPC front end.
type Server struct {
	Name    string
	URL     string
	Service *dataaccess.Service
	Clarens *clarens.Server
}

// AddMart registers a data mart (an Engine previously created with
// NewEngine, or any DSN-reachable database) with this server and publishes
// its tables to the grid's RLS.
func (s *Server) AddMart(e *Engine) error {
	spec, err := GenerateXSpec(e)
	if err != nil {
		return err
	}
	ref := SourceRef{
		Name:   e.Name(),
		URL:    "local://" + e.Name(),
		Driver: e.Dialect().DriverName,
		XSpec:  e.Name() + ".xspec",
	}
	return s.Service.AddDatabase(ref, spec, "", "")
}

// Query runs a federated query on this server.
func (s *Server) Query(sql string, params ...Value) (*QueryResult, error) {
	return s.Service.Query(sql, params...)
}

// QueryContext runs a federated query under a caller-supplied context:
// cancellation or deadline expiry propagates to every backend the routed
// query touches (POOL-RAL, Unity sub-queries, RLS lookups and remote
// forwards).
func (s *Server) QueryContext(ctx context.Context, sql string, params ...Value) (*QueryResult, error) {
	return s.Service.QueryContext(ctx, sql, params...)
}

// QueryStream runs a federated query as an incremental row stream: rows
// are pulled from the producing backend as the caller iterates, so a scan
// larger than server memory never materializes. Single-source scans (the
// POOL-RAL route and Unity pushdown plans) stream straight off the
// backend. A query whose tables live on another Clarens server streams
// through a cursor-to-cursor relay: this server opens a cursor on the
// peer and pulls it page by page, so no hop materializes the scan and
// memory stays bounded by the fetch size end to end (peers without cursor
// support fall back to a materialized forward). Mixed multi-server
// queries relay their remote inputs incrementally into the integration
// engine and stream the integrated result from memory. Cancelling ctx —
// or closing the stream — stops the backend query mid-scan, closing any
// remote cursors the relay holds. The caller must Close the stream
// (ForEach does so automatically):
//
//	sr, err := srv.QueryStream(ctx, "SELECT * FROM events")
//	if err != nil { ... }
//	err = sr.ForEach(func(row gridrdb.Row) error { ...; return nil })
//
// Remote consumers get the same shape through the system.cursor.open /
// fetch / close XML-RPC methods (gridql -stream).
func (s *Server) QueryStream(ctx context.Context, sql string, params ...Value) (*StreamResult, error) {
	return s.Service.QueryStreamContext(ctx, sql, params...)
}

// WireETL connects an in-process ETL pipeline to this server's query
// cache: after every Materialize into the named mart, the cached results
// that read the refreshed table are evicted. Call it once per (ETL, mart)
// before running Stage 2 against a mart this server serves; cross-process
// refreshes use `etlctl -notify` instead.
func (s *Server) WireETL(etl *warehouse.ETL, martSource string) {
	etl.OnRefresh = s.Service.MartInvalidator(martSource)
}

// Client returns an XML-RPC client bound to this server.
func (s *Server) Client() *clarens.Client { return clarens.NewClient(s.URL) }

// Grid assembles a deployment: an RLS catalog plus JClarens servers.
type Grid struct {
	mu      sync.Mutex
	rls     *rls.Server
	rlsURL  string
	servers []*Server
}

// NewGrid returns an empty deployment.
func NewGrid() *Grid { return &Grid{} }

// StartRLS launches the replica location service; addr "" binds an
// ephemeral localhost port. It returns the catalog URL.
func (g *Grid) StartRLS(addr string) (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.rls != nil {
		return g.rlsURL, nil
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv := rls.NewServer(0)
	url, err := srv.Start(addr)
	if err != nil {
		return "", err
	}
	g.rls, g.rlsURL = srv, url
	return url, nil
}

// RLSURL returns the catalog URL ("" before StartRLS).
func (g *Grid) RLSURL() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rlsURL
}

// AddServer starts a JClarens instance wired to the grid's RLS.
func (g *Grid) AddServer(cfg ServerConfig) (*Server, error) {
	g.mu.Lock()
	rlsURL := g.rlsURL
	g.mu.Unlock()

	dcfg := dataaccess.Config{
		Name:               cfg.Name,
		Profile:            cfg.Profile,
		CacheSize:          cfg.CacheSize,
		CacheMaxBytes:      cfg.CacheMaxBytes,
		CacheTTL:           cfg.CacheTTL,
		CursorTTL:          cfg.CursorTTL,
		DisableBinRows:     cfg.DisableBinaryRows,
		RelayFetchSize:     cfg.RelayFetchSize,
		SourceBudget:       cfg.SourceBudget,
		ScratchMaxBytes:    cfg.ScratchMaxBytes,
		Logger:             cfg.Logger,
		SlowQueryThreshold: cfg.SlowQueryThreshold,
		SlowQueryLogSize:   cfg.SlowQueryLogSize,
		DisableObsv:        cfg.DisableMetrics,
		MaxInFlight:        cfg.MaxInFlight,
		AdmissionQueue:     cfg.AdmissionQueue,
		AdmissionTimeout:   cfg.AdmissionTimeout,
		TenantWeights:      cfg.TenantWeights,
		SessionMaxCursors:  cfg.SessionMaxCursors,
		SessionMaxBytes:    cfg.SessionMaxBytes,
	}
	if rlsURL != "" {
		c := rls.NewClient(rlsURL)
		c.Profile = cfg.Profile
		dcfg.RLS = c
	}
	svc := dataaccess.New(dcfg)
	front := clarens.NewServer(cfg.Open)
	front.SetRequestTimeout(cfg.RequestTimeout)
	for u, p := range cfg.Users {
		front.AddUser(u, p)
	}
	if !cfg.Open && len(cfg.Users) == 0 {
		svc.Close()
		return nil, fmt.Errorf("gridrdb: server %q is closed but has no users", cfg.Name)
	}
	svc.RegisterMethods(front)
	front.SetMetrics(svc.Metrics().WritePrometheus)
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	url, err := front.Start(addr)
	if err != nil {
		svc.Close()
		return nil, err
	}
	svc.SetURL(url)
	s := &Server{Name: cfg.Name, URL: url, Service: svc, Clarens: front}
	g.mu.Lock()
	g.servers = append(g.servers, s)
	g.mu.Unlock()
	return s, nil
}

// Servers lists the running instances.
func (g *Grid) Servers() []*Server {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Server, len(g.servers))
	copy(out, g.servers)
	return out
}

// Close tears the whole deployment down.
func (g *Grid) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var first error
	for _, s := range g.servers {
		if err := s.Service.Close(); err != nil && first == nil {
			first = err
		}
		if err := s.Clarens.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.servers = nil
	if g.rls != nil {
		if err := g.rls.Close(); err != nil && first == nil {
			first = err
		}
		g.rls = nil
	}
	return first
}
