package gridrdb

import (
	"os"
	"regexp"
	"sort"
	"testing"
)

// TestWireSpecMatchesRegisteredMethods diffs the method surface a live
// server actually registers (via system.listMethods) against the methods
// docs/WIRE.md documents. A method added without documentation, or
// documented without existing, fails CI here.
func TestWireSpecMatchesRegisteredMethods(t *testing.T) {
	_, jc1, _ := buildGrid(t)

	raw, err := jc1.Client().Call("system.listMethods")
	if err != nil {
		t.Fatal(err)
	}
	list, ok := raw.([]interface{})
	if !ok {
		t.Fatalf("system.listMethods returned %T", raw)
	}
	registered := map[string]bool{}
	for _, v := range list {
		name, ok := v.(string)
		if !ok {
			t.Fatalf("method name is %T", v)
		}
		registered[name] = true
	}
	// system.login is documented and dispatched, but specially: the server
	// handles it before the method table (it must work without a session),
	// so listMethods does not enumerate it.
	if registered["system.login"] {
		t.Error("system.login appeared in the method table; it is dispatched pre-table")
	}
	registered["system.login"] = true

	spec, err := os.ReadFile("docs/WIRE.md")
	if err != nil {
		t.Fatal(err)
	}
	// Documented methods are written `name(args)` in the method-reference
	// tables (and echoed in prose with the same shape).
	re := regexp.MustCompile(`(system|dataaccess)\.[A-Za-z0-9_.]+\(`)
	documented := map[string]bool{}
	for _, m := range re.FindAllString(string(spec), -1) {
		documented[m[:len(m)-1]] = true
	}

	var missingDocs, staleDocs []string
	for m := range registered {
		if !documented[m] {
			missingDocs = append(missingDocs, m)
		}
	}
	for m := range documented {
		if !registered[m] {
			staleDocs = append(staleDocs, m)
		}
	}
	sort.Strings(missingDocs)
	sort.Strings(staleDocs)
	if len(missingDocs) > 0 {
		t.Errorf("registered but not documented in docs/WIRE.md: %v", missingDocs)
	}
	if len(staleDocs) > 0 {
		t.Errorf("documented in docs/WIRE.md but not registered: %v", staleDocs)
	}
}
