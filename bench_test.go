package gridrdb

// One benchmark per table and figure of the paper's evaluation (§5), plus
// ablation benchmarks for the design choices DESIGN.md calls out. These
// run on the zero-latency "local" profile so they measure the middleware
// itself; cmd/benchrepro regenerates the paper's tables under the
// simulated 100 Mbps LAN profile.

import (
	"fmt"
	"sync"
	"testing"

	"gridrdb/internal/dataaccess"
	"gridrdb/internal/experiments"
	"gridrdb/internal/netsim"
	"gridrdb/internal/ntuple"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/warehouse"
)

// ---- Figure 4: Stage 1, sources -> warehouse ----

func benchStage1(b *testing.B, nev int, staging bool) {
	cfg := ntuple.Config{Name: "bnt", NVar: 8, NEvents: nev, Runs: 4, Seed: 1}
	src := sqlengine.NewEngine("bsrc", sqlengine.DialectMySQL)
	if _, err := ntuple.NewGenerator(cfg).PopulateNormalized(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wh := sqlengine.NewEngine("bwh", sqlengine.DialectOracle)
		if err := warehouse.InitWarehouse(wh, wh.Dialect(), cfg); err != nil {
			b.Fatal(err)
		}
		etl := &warehouse.ETL{Staging: staging, BatchSize: 128}
		b.StartTimer()
		res, err := etl.RunStage1(src, cfg, wh, wh.Dialect())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.Bytes)
	}
}

// BenchmarkFig4ExtractLoad measures the Stage-1 ETL transfer at several
// staging-file sizes (the x-axis of Figure 4).
func BenchmarkFig4ExtractLoad(b *testing.B) {
	for _, nev := range []int{50, 500, 2150} {
		b.Run(fmt.Sprintf("events=%d", nev), func(b *testing.B) {
			benchStage1(b, nev, true)
		})
	}
}

// ---- Figure 5: Stage 2, warehouse views -> marts ----

// BenchmarkFig5Materialize measures view materialization into a MySQL mart.
func BenchmarkFig5Materialize(b *testing.B) {
	for _, nev := range []int{40, 350, 730} {
		b.Run(fmt.Sprintf("events=%d", nev), func(b *testing.B) {
			cfg := ntuple.Config{Name: "bnt5", NVar: 8, NEvents: nev, Runs: 1, Seed: 2}
			src := sqlengine.NewEngine("bsrc5", sqlengine.DialectMySQL)
			if _, err := ntuple.NewGenerator(cfg).PopulateNormalized(src); err != nil {
				b.Fatal(err)
			}
			wh := sqlengine.NewEngine("bwh5", sqlengine.DialectOracle)
			if err := warehouse.InitWarehouse(wh, wh.Dialect(), cfg); err != nil {
				b.Fatal(err)
			}
			etl := warehouse.NewETL()
			if _, err := etl.RunStage1(src, cfg, wh, wh.Dialect()); err != nil {
				b.Fatal(err)
			}
			views := warehouse.RunViews(cfg, wh.Dialect())
			if err := warehouse.CreateViews(wh, views); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mart := sqlengine.NewEngine("bmart5", sqlengine.DialectMySQL)
				res, err := etl.Materialize(wh, views[0].Name, cfg, mart, mart.Dialect(), "nt_local")
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(res.Bytes)
			}
		})
	}
}

// ---- Table 1 and Figure 6: the Stage-3 deployment ----

var (
	benchDeployOnce sync.Once
	benchDeploy     *experiments.Deployment
	benchDeployErr  error
)

// benchDeployment lazily builds one two-server deployment shared by the
// Stage-3 benchmarks (local profile: measures middleware cost only).
func benchDeployment(b *testing.B) *experiments.Deployment {
	benchDeployOnce.Do(func() {
		opt := experiments.DeployOptions{RowsPerTable: 3000, FillerTablesPerDB: 10, Profile: netsim.Local}
		benchDeploy, benchDeployErr = experiments.Deploy(opt)
	})
	if benchDeployErr != nil {
		b.Fatal(benchDeployErr)
	}
	return benchDeploy
}

// BenchmarkTable1QueryResponse measures the three query shapes of Table 1
// through the XML-RPC interface.
func BenchmarkTable1QueryResponse(b *testing.B) {
	d := benchDeployment(b)
	names := []string{"1server-local-1table", "1server-distributed-2tables", "2servers-distributed-4tables"}
	for qi, q := range experiments.Table1Queries() {
		b.Run(names[qi], func(b *testing.B) {
			client := d.Client()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Call("dataaccess.query", q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6RowSweep measures response time versus rows requested.
func BenchmarkFig6RowSweep(b *testing.B) {
	d := benchDeployment(b)
	for _, n := range []int{21, 301, 901, 2551} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			client := d.Client()
			q := fmt.Sprintf("SELECT event_id, run, e_tot FROM ev1 LIMIT %d", n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := client.Call("dataaccess.query", q)
				if err != nil {
					b.Fatal(err)
				}
				rs, err := dataaccess.DecodeResult(res)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Rows) != n {
					b.Fatalf("got %d rows, want %d", len(rs.Rows), n)
				}
			}
		})
	}
}

// ---- Ablations ----

// BenchmarkAblationStaging compares the prototype's temp-file staging ETL
// against direct streaming (§5.1 calls staging "a performance bottleneck").
func BenchmarkAblationStaging(b *testing.B) {
	b.Run("staged", func(b *testing.B) { benchStage1(b, 700, true) })
	b.Run("direct", func(b *testing.B) { benchStage1(b, 700, false) })
}

// BenchmarkAblationParallel compares scatter-gather over the bounded
// worker pool (the paper's enhancement, now pooled) against stock Unity's
// sequential execution, at several pool widths.
func BenchmarkAblationParallel(b *testing.B) {
	d := benchDeployment(b)
	q := "SELECT e.event_id, m.detector FROM ev1 e JOIN meta2 m ON e.run = m.run"
	run := func(name string, par bool, width int) {
		b.Run(name, func(b *testing.B) {
			fed := d.Serv1.Federation()
			oldPar, oldWidth := fed.Parallel, fed.MaxParallel
			fed.Parallel, fed.MaxParallel = par, width
			defer func() { fed.Parallel, fed.MaxParallel = oldPar, oldWidth }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Serv1.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("parallel", true, 0)
	run("parallel-width1", true, 1)
	run("sequential", false, 0)
}

// ---- Query-result cache (the qcache subsystem) ----

var (
	benchCacheOnce   sync.Once
	benchCacheDeploy *experiments.Deployment
	benchCacheErr    error
)

// benchCacheDeployment builds the cache-enabled twin of benchDeployment.
func benchCacheDeployment(b *testing.B) *experiments.Deployment {
	benchCacheOnce.Do(func() {
		opt := experiments.SmallDeploy()
		opt.RowsPerTable = 3000
		opt.FillerTablesPerDB = 10
		opt.CacheSize = 1024
		benchCacheDeploy, benchCacheErr = experiments.Deploy(opt)
	})
	if benchCacheErr != nil {
		b.Fatal(benchCacheErr)
	}
	return benchCacheDeploy
}

// BenchmarkCacheFederated measures the multi-mart scenario cold (cache
// flushed every iteration, so each query re-runs the full scatter-gather)
// versus warm (entry resident; served straight from qcache). The warm
// path must come out >= 10x faster than cold.
func BenchmarkCacheFederated(b *testing.B) {
	d := benchCacheDeployment(b)
	q := experiments.CacheQuery
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Serv1.CacheFlush()
			if _, err := d.Serv1.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := d.Serv1.Query(q); err != nil { // prime
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Serv1.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if d.Serv1.CacheStats().Hits < int64(b.N) {
			b.Fatalf("warm phase was not served from the cache: %+v", d.Serv1.CacheStats())
		}
	})
	b.Run("uncached-baseline", func(b *testing.B) {
		base := benchDeployment(b) // cache-disabled twin
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := base.Serv1.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRoute compares the POOL-RAL path against the Unity path
// for the same single-table query (§4.5's routing decision).
func BenchmarkAblationRoute(b *testing.B) {
	d := benchDeployment(b)
	q := "SELECT event_id, e_tot FROM ev1 WHERE run = 102"
	b.Run("pool-ral", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qr, err := d.Serv1.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if qr.Route != dataaccess.RoutePOOLRAL {
				b.Fatalf("route = %s", qr.Route)
			}
		}
	})
	b.Run("unity", func(b *testing.B) {
		// Force the Unity path with a shape RAL rejects (ORDER BY).
		qq := q + " ORDER BY event_id"
		for i := 0; i < b.N; i++ {
			qr, err := d.Serv1.Query(qq)
			if err != nil {
				b.Fatal(err)
			}
			if qr.Route != dataaccess.RouteUnity {
				b.Fatalf("route = %s", qr.Route)
			}
		}
	})
}

// BenchmarkAblationRLS compares a query answered locally against the same
// logical operation requiring an RLS lookup plus remote forwarding — the
// cost the paper accepts to distribute registration load (§4.8).
func BenchmarkAblationRLS(b *testing.B) {
	d := benchDeployment(b)
	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Serv1.Query("SELECT event_id FROM ev1 WHERE run = 101"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rls-remote", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qr, err := d.Serv1.Query("SELECT event_id FROM ev4 WHERE run = 101")
			if err != nil {
				b.Fatal(err)
			}
			if qr.Route != dataaccess.RouteRemote {
				b.Fatalf("route = %s", qr.Route)
			}
		}
	})
}

// BenchmarkEngineSelect is a microbenchmark of the embedded engine itself.
func BenchmarkEngineSelect(b *testing.B) {
	e := sqlengine.NewEngine("micro", sqlengine.DialectANSI)
	if _, err := e.Exec("CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR(32))"); err != nil {
		b.Fatal(err)
	}
	rows := make([]sqlengine.Row, 10000)
	for i := range rows {
		rows[i] = sqlengine.Row{
			sqlengine.NewInt(int64(i)), sqlengine.NewFloat(float64(i) / 3),
			sqlengine.NewString(fmt.Sprintf("tag%d", i%100)),
		}
	}
	if _, err := e.InsertRows("t", rows); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := e.Query("SELECT a, b FROM t WHERE a % 100 = 7 AND b > 1")
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}
