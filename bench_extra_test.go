package gridrdb

// Microbenchmarks for the substrates that dominate the end-to-end numbers:
// the XML-RPC codec (every Clarens call), the staging codec (every ETL
// byte), and the semantic matcher extension.

import (
	"bytes"
	"fmt"
	"testing"

	"gridrdb/internal/clarens"
	"gridrdb/internal/dataaccess"
	"gridrdb/internal/ntuple"
	"gridrdb/internal/semantic"
	"gridrdb/internal/sqlengine"
	"gridrdb/internal/xspec"
)

// benchResultSet builds the 1000-row result shape shared by the wire
// codec benchmarks — the dominant per-row cost of the remote path in
// Table 1 / Figure 6.
func benchResultSet() *sqlengine.ResultSet {
	rs := &sqlengine.ResultSet{Columns: []string{"event_id", "run", "e_tot"}}
	for i := 0; i < 1000; i++ {
		rs.Rows = append(rs.Rows, sqlengine.Row{
			sqlengine.NewInt(int64(i)), sqlengine.NewInt(int64(100 + i%5)),
			sqlengine.NewFloat(float64(i) / 7),
		})
	}
	return rs
}

// BenchmarkXMLRPCResultCodec measures the legacy boxed path: EncodeResult
// interface boxing, tree parse, re-boxing decode. It is the baseline the
// zero-boxing benchmarks below are read against.
func BenchmarkXMLRPCResultCodec(b *testing.B) {
	rs := benchResultSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := clarens.MarshalResponse(dataaccess.EncodeResult(rs))
		if err != nil {
			b.Fatal(err)
		}
		v, err := clarens.UnmarshalResponseTree(payload)
		if err != nil {
			b.Fatal(err)
		}
		back, err := dataaccess.DecodeResult(v)
		if err != nil {
			b.Fatal(err)
		}
		if len(back.Rows) != 1000 {
			b.Fatal("row loss")
		}
		b.SetBytes(int64(len(payload)))
	}
}

// BenchmarkWireCodecXML measures the zero-boxing XML path: cell-direct
// encoding into a reused buffer and streaming token decode straight into
// engine rows (same document bytes as the boxed baseline).
func BenchmarkWireCodecXML(b *testing.B) {
	rs := benchResultSet()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := clarens.MarshalResponseTo(&buf, dataaccess.WireResult(rs)); err != nil {
			b.Fatal(err)
		}
		res, err := clarens.DecodeResponse(bytes.NewReader(buf.Bytes()), func(d *clarens.Decoder) (interface{}, error) {
			return dataaccess.DecodeResultFrom(d)
		})
		if err != nil {
			b.Fatal(err)
		}
		if back := res.(*sqlengine.ResultSet); len(back.Rows) != 1000 {
			b.Fatal("row loss")
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// BenchmarkWireCodecBinary measures the negotiated binary row framing
// (the server↔server fast path).
func BenchmarkWireCodecBinary(b *testing.B) {
	rs := benchResultSet()
	var frame []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame = dataaccess.AppendRowsBinary(frame[:0], rs.Rows)
		back, err := dataaccess.DecodeRowsBinary(frame)
		if err != nil {
			b.Fatal(err)
		}
		if len(back) != 1000 {
			b.Fatal("row loss")
		}
		b.SetBytes(int64(len(frame)))
	}
}

// BenchmarkNtupleGeneration measures the workload generator itself.
func BenchmarkNtupleGeneration(b *testing.B) {
	cfg := ntuple.Config{Name: "b", NVar: 200, NEvents: 1000, Runs: 8, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := ntuple.NewGenerator(cfg).Events()
		if len(events) != 1000 {
			b.Fatal("short generation")
		}
	}
}

// BenchmarkSemanticMatch measures schema matching over two 50-table specs
// (the §6 extension).
func BenchmarkSemanticMatch(b *testing.B) {
	mkSpec := func(name, prefix string) *xspec.LowerSpec {
		s := &xspec.LowerSpec{Name: name, Dialect: "ansi"}
		for i := 0; i < 50; i++ {
			s.Tables = append(s.Tables, xspec.TableSpec{
				Name: fmt.Sprintf("%stable_%d", prefix, i),
				Columns: []xspec.ColumnSpec{
					{Name: "id", Kind: "INTEGER"},
					{Name: fmt.Sprintf("val_%d", i), Kind: "DOUBLE"},
					{Name: "tag", Kind: "VARCHAR"},
				},
			})
		}
		return s
	}
	left := mkSpec("a", "")
	right := mkSpec("b", "tbl_")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := semantic.MatchSpecs(left, right, semantic.DefaultOptions())
		if len(m) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkXSpecGenerate measures live-introspection cost (the schema
// tracker pays this every interval, §4.9).
func BenchmarkXSpecGenerate(b *testing.B) {
	e := sqlengine.NewEngine("bx", sqlengine.DialectMySQL)
	for i := 0; i < 40; i++ {
		if _, err := e.Exec(fmt.Sprintf("CREATE TABLE `t%d` (`a` BIGINT, `b` DOUBLE, `c` VARCHAR(32))", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := xspec.Generate("bx", "mysql", e)
		if err != nil || len(spec.Tables) != 40 {
			b.Fatalf("%v %d", err, len(spec.Tables))
		}
		data, err := spec.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		_ = xspec.FingerprintOf(data)
	}
}

// BenchmarkWireThroughput measures raw rows/sec through the TCP wire
// protocol with a trivial query (no netsim charging).
func BenchmarkWireRoundTrip(b *testing.B) {
	d := benchDeployment(b)
	fed := d.Serv1.Federation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := fed.QuerySource("d1", "SELECT 1")
		if err != nil || len(rs.Rows) != 1 {
			b.Fatalf("%v", err)
		}
	}
}
